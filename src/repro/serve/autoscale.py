"""Metrics-driven autoscaling: the observability loop, closed.

``repro.obs`` made the serving stack *report* queue depth, per-tier
latency and shed counts; this module makes it *act* on them.  An
:class:`Autoscaler` periodically receives an :class:`AutoscaleSample`
(built by the server from the same counters the ``stats``/``metrics``
verbs export — there is no second bookkeeping path) and drives
``FleetEngine.resize()`` between ``min_workers`` and ``max_workers``:

* **scale up** when any pressure signal breaches — per-worker queue
  pressure above ``queue_high``, sheds during the last interval at or
  above ``shed_high``, or a tier's observed p99 above its target;
* **scale down** one worker at a time, only after
  ``scale_down_consecutive`` *consecutive* calm intervals (pressure
  below ``queue_low``, zero sheds) — the hysteresis that keeps a bursty
  workload from flapping the fleet;
* **cooldown** after every resize: ``cooldown_seconds`` must pass
  before the next one, so a resize's own migration cost never triggers
  the next resize.

Every tick emits an ``autoscale.decision`` structured log event (INFO
for resizes, DEBUG for holds), and :meth:`Autoscaler.status` serves the
recent decision ring through the ``stats`` verb — what the
``repro fleet-status`` CLI renders.

The policy is a pure function of ``(sample, internal state, clock)``;
tests pin the clock and a recording ``resize`` callable to assert the
whole decision trajectory.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..obs.log import get_logger, log_event

_logger = get_logger("serve.autoscale")

__all__ = [
    "AutoscaleConfig",
    "AutoscaleDecision",
    "AutoscaleSample",
    "Autoscaler",
]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Policy knobs (see the module docstring for the loop itself)."""

    min_workers: int = 1
    max_workers: int = 4
    interval_seconds: float = 1.0  # sampling cadence
    queue_high: float = 4.0  # (queue_depth + inflight) / workers: scale up
    queue_low: float = 0.5  # ... below this (and no sheds): calm interval
    shed_high: int = 1  # sheds per interval that force a scale-up (0: off)
    #: tier → p99 target in ms; an observed p99 above target is a breach.
    tier_p99_targets_ms: dict[str, float] = field(default_factory=dict)
    scale_up_step: int = 1  # workers added per scale-up
    scale_down_consecutive: int = 3  # calm intervals before one scale-down
    cooldown_seconds: float = 3.0  # min spacing between resizes

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(
                f"min_workers must be positive, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got "
                f"{self.interval_seconds}"
            )
        if self.queue_low > self.queue_high:
            raise ValueError(
                f"queue_low ({self.queue_low}) must be <= queue_high "
                f"({self.queue_high}) — the gap *is* the hysteresis band"
            )
        if self.scale_up_step < 1:
            raise ValueError(
                f"scale_up_step must be positive, got {self.scale_up_step}"
            )
        if self.scale_down_consecutive < 1:
            raise ValueError(
                f"scale_down_consecutive must be positive, got "
                f"{self.scale_down_consecutive}"
            )


@dataclass(frozen=True)
class AutoscaleSample:
    """One tick's worth of merged fleet metrics."""

    queue_depth: int  # requests in open micro-batch groups
    inflight: int  # admitted engine requests not yet answered
    shed: int  # the *cumulative* shed counter (deltas computed here)
    workers: int  # current fleet width
    tier_p99_ms: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class AutoscaleDecision:
    """One tick's outcome (``up``/``down``/``hold``) and its evidence."""

    action: str
    workers: int  # the fleet width after this decision
    reason: str
    pressure: float  # (queue_depth + inflight) per worker, this tick
    shed_delta: int  # sheds since the previous tick

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "workers": self.workers,
            "reason": self.reason,
            "pressure": round(self.pressure, 3),
            "shed_delta": self.shed_delta,
        }


class Autoscaler:
    """The policy loop state machine around a ``resize`` callable.

    ``resize`` is :meth:`FleetEngine.resize` in production and a
    recording stub in tests; ``clock`` defaults to ``time.monotonic``
    and is injectable for deterministic cooldown tests.  Thread-safe:
    the server calls :meth:`observe` from its thread pool while
    :meth:`status` answers ``stats`` verbs concurrently.
    """

    def __init__(
        self,
        config: AutoscaleConfig | None = None,
        *,
        resize: Callable[[int], object],
        initial_workers: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or AutoscaleConfig()
        self._resize = resize
        self._workers = initial_workers
        self._clock = clock
        self._lock = threading.Lock()
        self._last_shed: int | None = None
        self._calm_ticks = 0
        self._last_resize_at: float | None = None
        self._resizes = 0
        self._decisions: deque[AutoscaleDecision] = deque(maxlen=64)

    # -- the policy ----------------------------------------------------------

    def observe(self, sample: AutoscaleSample) -> AutoscaleDecision:
        """Ingest one sample; maybe resize; always return the decision."""
        with self._lock:
            decision = self._decide(sample)
            self._last_shed = sample.shed
            if decision.action in ("up", "down"):
                try:
                    self._resize(decision.workers)
                except Exception as error:
                    # a resize can fail live (a cluster draining a worker
                    # that just crashed, a spawn hitting a resource limit);
                    # the loop must survive it.  Record a hold, but start
                    # the cooldown anyway so a persistently failing resize
                    # is retried at the cooldown cadence, not every tick.
                    log_event(
                        _logger, logging.WARNING, "autoscale.resize_failed",
                        target=decision.workers,
                        error=type(error).__name__, detail=str(error),
                    )
                    self._last_resize_at = self._clock()
                    self._calm_ticks = 0
                    decision = AutoscaleDecision(
                        "hold", sample.workers,
                        f"resize to {decision.workers} failed: "
                        f"{type(error).__name__}",
                        decision.pressure, decision.shed_delta,
                    )
                else:
                    self._workers = decision.workers
                    self._last_resize_at = self._clock()
                    self._resizes += 1
                    self._calm_ticks = 0
            self._decisions.append(decision)
        level = (
            logging.INFO if decision.action != "hold" else logging.DEBUG
        )
        if _logger.isEnabledFor(level):
            log_event(
                _logger, level, "autoscale.decision",
                action=decision.action,
                workers=decision.workers,
                reason=decision.reason,
                pressure=round(decision.pressure, 3),
                shed_delta=decision.shed_delta,
                queue_depth=sample.queue_depth,
                inflight=sample.inflight,
            )
        return decision

    def _decide(self, sample: AutoscaleSample) -> AutoscaleDecision:
        config = self.config
        workers = max(1, sample.workers)
        pressure = (sample.queue_depth + sample.inflight) / workers
        shed_delta = (
            max(0, sample.shed - self._last_shed)
            if self._last_shed is not None
            else 0
        )
        breaches = []
        if config.queue_high and pressure >= config.queue_high:
            breaches.append(
                f"queue pressure {pressure:.1f}/worker >= "
                f"{config.queue_high:g}"
            )
        if config.shed_high and shed_delta >= config.shed_high:
            breaches.append(f"{shed_delta} shed(s) last interval")
        for tier, target in sorted(config.tier_p99_targets_ms.items()):
            observed = sample.tier_p99_ms.get(tier)
            if observed is not None and observed > target:
                breaches.append(
                    f"{tier} p99 {observed:.1f}ms > {target:g}ms"
                )
        now = self._clock()
        cooling = (
            self._last_resize_at is not None
            and now - self._last_resize_at < config.cooldown_seconds
        )
        if breaches:
            self._calm_ticks = 0
            target = min(
                sample.workers + config.scale_up_step, config.max_workers
            )
            reason = "; ".join(breaches)
            if target <= sample.workers:
                return AutoscaleDecision(
                    "hold", sample.workers,
                    f"at max_workers ({config.max_workers}): {reason}",
                    pressure, shed_delta,
                )
            if cooling:
                return AutoscaleDecision(
                    "hold", sample.workers, f"cooldown: {reason}",
                    pressure, shed_delta,
                )
            return AutoscaleDecision(
                "up", target, reason, pressure, shed_delta
            )
        if pressure <= config.queue_low and shed_delta == 0:
            self._calm_ticks += 1
            if (
                self._calm_ticks >= config.scale_down_consecutive
                and sample.workers > config.min_workers
                and not cooling
            ):
                return AutoscaleDecision(
                    "down", sample.workers - 1,
                    f"calm for {self._calm_ticks} interval(s) "
                    f"(pressure {pressure:.1f} <= {config.queue_low:g})",
                    pressure, shed_delta,
                )
            return AutoscaleDecision(
                "hold", sample.workers,
                f"calm {self._calm_ticks}/{config.scale_down_consecutive}",
                pressure, shed_delta,
            )
        # between the watermarks: neither breach nor calm — hysteresis band
        self._calm_ticks = 0
        return AutoscaleDecision(
            "hold", sample.workers,
            f"pressure {pressure:.1f} within "
            f"[{config.queue_low:g}, {config.queue_high:g})",
            pressure, shed_delta,
        )

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """The ``stats`` verb's ``autoscale`` block (and the
        ``repro fleet-status`` payload): bounds, current width, and the
        recent non-hold decisions newest-last."""
        with self._lock:
            decisions = list(self._decisions)
            return {
                "workers": self._workers,
                "min_workers": self.config.min_workers,
                "max_workers": self.config.max_workers,
                "interval_seconds": self.config.interval_seconds,
                "resizes": self._resizes,
                "calm_ticks": self._calm_ticks,
                "last_decision": (
                    decisions[-1].to_dict() if decisions else None
                ),
                "decisions": [
                    d.to_dict() for d in decisions if d.action != "hold"
                ][-10:],
            }
