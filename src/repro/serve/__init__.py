"""repro.serve — the network serving layer over the certainty engine.

Turns the library into a servable system: an asyncio JSON-lines server
(:class:`CertaintyServer`) that queues incoming ``CERTAINTY(q, FK)``
requests, groups concurrent decides **by problem fingerprint** into
micro-batches, and executes them on a :class:`ShardedEngine` — *N*
:class:`~repro.api.Session` workers behind a consistent-hash ring, so
each shard's plan cache stays hot and its prepared solvers stay warm.

Server side::

    from repro.serve import ServerConfig, run_server

    run_server(ServerConfig(port=7432, shards=4, fo_backend="sql"))
    # or: python -m repro serve --port 7432 --shards 4 --sql

Thread shards share one interpreter (and one GIL).  For CPU-bound
deployments, ``processes=N`` (CLI: ``repro serve --processes N``) serves
through :mod:`repro.serve.fleet` instead: a :class:`FleetSupervisor`
spawns N worker processes — each a private single-shard server — and the
:class:`FleetEngine` routes over the same class-digest hash ring with
crash respawn, request retry, graceful drain, and ~1/N remap on resize::

    run_server(ServerConfig(port=7432, processes=4))
    # or: python -m repro serve --port 7432 --processes 4

Client side::

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", 7432) as client:
        decision = client.decide(problem, db)     # Decision, provenance intact
        print(decision.certain, decision.backend, decision.cache_hit)
        print(client.stats()["server"])           # micro-batches, verbs, ...

The wire format (:mod:`repro.serve.protocol`) carries
:meth:`Problem.to_dict` and :func:`repro.db.io.to_dict` payloads in and
:meth:`Decision.to_dict` payloads out, with structured error envelopes
(:class:`~repro.exceptions.RemoteError` client-side).  For in-process use
(tests, examples, benchmarks) :class:`BackgroundServer` runs the same
server on a daemon thread.
"""

from ..exceptions import (
    RemoteError,
    ServeProtocolError,
    ServerOverloadedError,
    WorkerUnavailableError,
)
from .autoscale import (
    AutoscaleConfig,
    AutoscaleDecision,
    AutoscaleSample,
    Autoscaler,
)
from .backoff import BackoffPolicy, backoff_delay_seconds
from .client import AsyncServeClient, ServeClient
from .fleet import FleetConfig, FleetEngine
from .supervisor import FleetSupervisor, WorkerHandle
from .protocol import (
    ERROR_CODES,
    PROTOCOL,
    VERSION,
    Request,
    UnsupportedVerbError,
    decode_frame,
    decode_request,
    decode_response,
    encode_frame,
    error_response,
    ok_response,
)
from .server import (
    BackgroundServer,
    CertaintyServer,
    MicroBatcher,
    ServerConfig,
    ServerMetrics,
    run_server,
)
from .shard import HashRing, ShardedEngine, ShardStats

__all__ = [
    "ERROR_CODES",
    "PROTOCOL",
    "VERSION",
    "AsyncServeClient",
    "AutoscaleConfig",
    "AutoscaleDecision",
    "AutoscaleSample",
    "Autoscaler",
    "BackgroundServer",
    "BackoffPolicy",
    "CertaintyServer",
    "FleetConfig",
    "FleetEngine",
    "FleetSupervisor",
    "HashRing",
    "MicroBatcher",
    "RemoteError",
    "Request",
    "ServeClient",
    "ServeProtocolError",
    "ServerConfig",
    "ServerMetrics",
    "ServerOverloadedError",
    "ShardStats",
    "ShardedEngine",
    "UnsupportedVerbError",
    "WorkerHandle",
    "WorkerUnavailableError",
    "backoff_delay_seconds",
    "decode_frame",
    "decode_request",
    "decode_response",
    "encode_frame",
    "error_response",
    "ok_response",
    "run_server",
]
