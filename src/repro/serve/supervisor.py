"""Worker-process lifecycle for the multi-process serving fleet.

One :class:`FleetSupervisor` owns *N* worker processes.  Each worker runs
its own :class:`~repro.serve.server.CertaintyServer` — a full asyncio
server with a private single-shard engine — bound to a loopback socket
whose port the OS picks.  The supervisor's job is purely lifecycle:

* **spawn** — workers start via the ``spawn`` multiprocessing context (a
  fresh interpreter; never ``fork``, the parent runs event loops and
  thread pools) and complete a **readiness handshake**: the worker binds
  its socket first and only then reports ``(host, port)`` back through a
  pipe, so the supervisor never hands out an address that is not yet
  accepting connections;
* **heartbeat/respawn** — a daemon thread checks liveness every
  ``heartbeat_seconds`` and respawns dead workers; callers can also force
  the check on the request path (:meth:`FleetSupervisor.ensure_alive`)
  so a crashed worker is replaced at the next request, not the next tick;
* **graceful drain** — :meth:`stop` asks each worker to drain via the
  wire ``shutdown`` verb (in-flight micro-batches finish), then joins,
  escalating to ``terminate``/``kill`` only on timeout;
* **resize** — :meth:`resize` spawns or drains workers at the tail; the
  routing ring is the caller's (``~1/N`` of class digests remap, the rest
  keep their warm plan caches).

Every handle carries a monotonically increasing **generation** so racing
request threads cannot double-respawn one crashed worker: a respawn is a
compare-and-swap on the generation the caller observed.

Workers are daemon processes: if the supervising process dies without a
drain, the operating system reaps the fleet rather than leaking it.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..exceptions import WorkerUnavailableError
from ..obs.log import get_logger, log_event

# Late imports of .server inside functions below keep the import graph
# acyclic (server -> fleet -> supervisor) and are re-resolved inside the
# spawned child anyway.

_logger = get_logger("serve.supervisor")

#: How much of a dead worker's stderr file the crash log quotes (bytes
#: read from the tail, then trimmed to whole lines).
_FORENSICS_TAIL_BYTES = 8192
_FORENSICS_TAIL_LINES = 15


@dataclass(frozen=True)
class WorkerHandle:
    """One live worker: its process, bound address, and generation."""

    shard: int
    generation: int
    process: multiprocessing.process.BaseProcess
    host: str
    port: int
    stderr_path: str | None = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


def worker_main(conn, config, stderr_path: str | None = None) -> None:
    """The worker process body: serve one private ``CertaintyServer``.

    *conn* is the supervisor's pipe; the worker sends ``("ready", host,
    port)`` exactly once, after the socket is bound.  Runs until a
    ``shutdown`` verb arrives (the drain path) or the process is killed
    (the crash path the supervisor recovers from).  When *stderr_path*
    is given, fd 2 is redirected there so crash tracebacks (and the
    worker's own log stream) survive the process for the supervisor's
    forensics.
    """
    import asyncio

    if stderr_path is not None:
        try:
            fd = os.open(
                stderr_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600
            )
            os.dup2(fd, 2)
            os.close(fd)
        except OSError:
            pass  # no forensics file, but the worker must still serve

    from ..obs.log import setup_logging
    from ..obs.trace import configure_recorder
    from .server import CertaintyServer

    setup_logging(
        getattr(config, "log_level", "warning"),
        getattr(config, "log_format", "human"),
    )
    configure_recorder(site=f"worker-{os.getpid()}")

    async def run() -> None:
        server = CertaintyServer(config)
        await server.start()
        host, port = server.address
        conn.send(("ready", host, port))
        conn.close()
        await server.serve_until_stopped()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass


def _stderr_tail(path: str | None) -> str | None:
    """The last few lines of a worker's stderr file (bounded read), or
    ``None`` when there is nothing to quote."""
    if path is None:
        return None
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(max(0, size - _FORENSICS_TAIL_BYTES))
            data = handle.read(_FORENSICS_TAIL_BYTES)
    except OSError:
        return None
    text = data.decode("utf-8", errors="replace").strip()
    if not text:
        return None
    lines = text.splitlines()[-_FORENSICS_TAIL_LINES:]
    return "\n".join(lines)


#: Serializes the PYTHONPATH set/spawn/restore window across every
#: supervisor in this process (os.environ is shared state).
_SPAWN_ENV_LOCK = threading.Lock()


def _repro_source_root() -> str | None:
    """The directory that must be importable for ``import repro`` to work
    in a spawned child (e.g. ``src/`` in a PYTHONPATH checkout)."""
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.dirname(package_dir)
    return root if os.path.isdir(root) else None


class FleetSupervisor:
    """Spawn, watch, respawn, resize, and drain the worker processes."""

    def __init__(
        self,
        worker_config,
        n_workers: int,
        *,
        spawn_timeout: float = 60.0,
        heartbeat_seconds: float = 1.0,
        respawn: bool = True,
        drain_timeout: float = 10.0,
    ):
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        if spawn_timeout <= 0:
            raise ValueError("spawn_timeout must be positive")
        self._worker_config = worker_config
        self._spawn_timeout = spawn_timeout
        self._heartbeat_seconds = heartbeat_seconds
        self._respawn = respawn
        self._drain_timeout = drain_timeout
        self._context = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()  # guards handles/generation only
        self._spawn_locks: dict[int, threading.Lock] = {}  # per shard
        self._resize_lock = threading.Lock()
        self._handles: list[WorkerHandle] = []
        self._generation = 0
        self._stopped = False
        self._heartbeat: threading.Thread | None = None
        try:
            for shard in range(n_workers):
                self._handles.append(self._spawn(shard))
        except Exception:
            self._kill_all()
            raise
        if respawn and heartbeat_seconds > 0:
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-fleet-heartbeat",
                daemon=True,
            )
            self._heartbeat.start()

    # -- spawning ------------------------------------------------------------

    def _spawn(self, shard: int) -> WorkerHandle:
        """Start one worker and wait for its readiness handshake.

        Slow (a fresh interpreter boots); callers must NOT hold the
        global handle lock — only the shard's spawn lock — so one
        respawn never stalls requests to healthy shards.
        """
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        with self._lock:
            self._generation += 1
            generation = self._generation
        stderr_fd, stderr_path = tempfile.mkstemp(
            prefix=f"repro-worker-{shard}-", suffix=".stderr"
        )
        os.close(stderr_fd)  # the child reopens by path (spawn-safe)
        process = self._context.Process(
            target=worker_main,
            args=(child_conn, self._worker_config, stderr_path),
            name=f"repro-fleet-worker-{shard}",
            daemon=True,
        )
        # The spawn context starts a fresh interpreter, which must be able
        # to `import repro` on its own: surface a src/-checkout import root
        # through PYTHONPATH for the child (a no-op for installed packages).
        with self._child_pythonpath():
            process.start()
        child_conn.close()
        log_event(
            _logger, logging.INFO, "worker.spawn",
            shard=shard, generation=generation, pid=process.pid,
        )
        try:
            if not parent_conn.poll(self._spawn_timeout):
                raise WorkerUnavailableError(
                    f"worker {shard} did not report ready within "
                    f"{self._spawn_timeout}s"
                )
            message = parent_conn.recv()
        except (EOFError, OSError) as error:
            process.kill()
            process.join(timeout=5)
            log_event(
                _logger, logging.ERROR, "worker.crash",
                shard=shard, generation=generation,
                exit_code=process.exitcode, during="startup",
                stderr_tail=_stderr_tail(stderr_path),
            )
            self._remove_stderr(stderr_path)
            raise WorkerUnavailableError(
                f"worker {shard} died during startup: {error}"
            ) from error
        except WorkerUnavailableError:
            process.kill()
            process.join(timeout=5)
            self._remove_stderr(stderr_path)
            raise
        finally:
            parent_conn.close()
        tag, host, port = message
        assert tag == "ready", f"unexpected handshake message {message!r}"
        log_event(
            _logger, logging.INFO, "worker.ready",
            shard=shard, generation=generation, pid=process.pid,
            host=host, port=port,
        )
        return WorkerHandle(
            shard=shard,
            generation=generation,
            process=process,
            host=host,
            port=port,
            stderr_path=stderr_path,
        )

    @staticmethod
    @contextmanager
    def _child_pythonpath():
        """Export this checkout's import root into ``PYTHONPATH`` around
        ``process.start()`` (restored afterwards), so a spawned child can
        ``import repro`` even in an uninstalled ``PYTHONPATH=src`` run.

        ``os.environ`` is process-global, so the set/spawn/restore window
        is serialized through one module-level lock shared by every
        supervisor in this process — two concurrent respawns must not
        interleave their restores and leave the variable altered.
        """
        with _SPAWN_ENV_LOCK:
            root = _repro_source_root()
            previous = os.environ.get("PYTHONPATH")
            entries = previous.split(os.pathsep) if previous else []
            if root is None or root in entries:
                yield
                return
            os.environ["PYTHONPATH"] = (
                root if previous is None else root + os.pathsep + previous
            )
            try:
                yield
            finally:
                if previous is None:
                    os.environ.pop("PYTHONPATH", None)
                else:
                    os.environ["PYTHONPATH"] = previous

    # -- liveness ------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._handles)

    def handle(self, shard: int) -> WorkerHandle:
        with self._lock:
            return self._handles[shard]

    def handles(self) -> tuple[WorkerHandle, ...]:
        with self._lock:
            return tuple(self._handles)

    def ensure_alive(self, shard: int) -> WorkerHandle:
        """The shard's handle, respawning first if the worker is dead.

        Raises :class:`~repro.exceptions.WorkerUnavailableError` when the
        worker is dead and respawning is disabled or fails — the caller
        turns that into an error envelope instead of hanging.
        """
        with self._lock:
            self._check_running()
            handle = self._handles[shard]
        if handle.alive:
            return handle
        return self.restart(shard, handle.generation)

    def restart(self, shard: int, observed_generation: int) -> WorkerHandle:
        """Respawn *shard* unless someone already did (generation CAS).

        The slow spawn runs under the shard's own lock only, so a
        respawn never blocks requests to healthy shards; the global lock
        is taken just long enough to read and swap the handle.
        """
        with self._spawn_lock(shard):
            with self._lock:
                self._check_running()
                if shard >= len(self._handles):  # shrunk away meanwhile
                    raise WorkerUnavailableError(
                        f"worker {shard} no longer exists"
                    )
                handle = self._handles[shard]
                if handle.generation != observed_generation or handle.alive:
                    return handle  # raced: already replaced, or came back
                if not self._respawn:
                    raise WorkerUnavailableError(
                        f"worker {shard} is down and respawning is disabled"
                    )
            handle.process.join(timeout=0.1)
            log_event(
                _logger, logging.ERROR, "worker.crash",
                shard=shard, generation=handle.generation,
                exit_code=handle.process.exitcode,
                stderr_tail=_stderr_tail(handle.stderr_path),
            )
            self._remove_stderr(handle.stderr_path)
            replacement = self._spawn(shard)
            log_event(
                _logger, logging.INFO, "worker.respawn",
                shard=shard, generation=replacement.generation,
                replaced=handle.generation,
            )
            with self._lock:
                if self._stopped or shard >= len(self._handles):
                    # stop()/shrink raced the spawn: don't leak the worker
                    doomed = replacement
                else:
                    self._handles[shard] = replacement
                    doomed = None
            if doomed is not None:
                self._drain(doomed)
                raise WorkerUnavailableError(
                    f"worker {shard} was removed while respawning"
                )
            return replacement

    def _spawn_lock(self, shard: int) -> threading.Lock:
        with self._lock:
            lock = self._spawn_locks.get(shard)
            if lock is None:
                lock = self._spawn_locks[shard] = threading.Lock()
            return lock

    def _heartbeat_loop(self) -> None:
        while not self._stopped:
            time.sleep(self._heartbeat_seconds)
            if self._stopped:
                return
            for handle in self.handles():
                if not handle.alive:
                    log_event(
                        _logger, logging.WARNING, "worker.heartbeat-miss",
                        shard=handle.shard, generation=handle.generation,
                    )
                    try:
                        self.restart(handle.shard, handle.generation)
                    except WorkerUnavailableError:
                        pass  # the request path will report it

    # -- resizing ------------------------------------------------------------

    def resize(self, n_workers: int) -> tuple[WorkerHandle, ...]:
        """Grow or shrink the fleet to *n_workers* (drains the surplus).

        Serialized against concurrent resizes; growth spawns outside the
        global handle lock so in-flight requests keep flowing.
        """
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        with self._resize_lock:
            while True:
                with self._lock:
                    self._check_running()
                    current = len(self._handles)
                if current >= n_workers:
                    break
                handle = self._spawn(current)
                with self._lock:
                    self._handles.append(handle)
            with self._lock:
                surplus = self._handles[n_workers:]
                del self._handles[n_workers:]
        for handle in surplus:
            self._drain(handle)
        return self.handles()

    # -- shutdown ------------------------------------------------------------

    def _drain(self, handle: WorkerHandle) -> None:
        """Gracefully stop one worker: shutdown verb, join, escalate."""
        log_event(
            _logger, logging.INFO, "worker.drain",
            shard=handle.shard, generation=handle.generation,
        )
        if handle.alive:
            try:
                from .client import ServeClient

                with ServeClient(
                    handle.host, handle.port, timeout=self._drain_timeout
                ) as client:
                    client.shutdown()
            except Exception:
                pass  # dead or wedged: the join/terminate path handles it
        handle.process.join(timeout=self._drain_timeout)
        if handle.alive:
            handle.process.terminate()
            handle.process.join(timeout=2)
        if handle.alive:  # pragma: no cover - last resort
            handle.process.kill()
            handle.process.join(timeout=2)
        self._remove_stderr(handle.stderr_path)

    def _kill_all(self) -> None:
        for handle in self._handles:
            if handle.alive:
                handle.process.kill()
                handle.process.join(timeout=2)
            self._remove_stderr(handle.stderr_path)
        self._handles.clear()

    @staticmethod
    def _remove_stderr(path: str | None) -> None:
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def stop(self) -> None:
        """Drain every worker and stop the heartbeat (idempotent)."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = list(self._handles)
            self._handles.clear()
        for handle in handles:
            self._drain(handle)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _check_running(self) -> None:
        if self._stopped:
            raise WorkerUnavailableError("the fleet supervisor is stopped")

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else "running"
        return f"FleetSupervisor({state}, workers={self.n_workers})"
