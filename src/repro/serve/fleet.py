"""Process-per-shard serving: the :class:`ShardedEngine` surface over a
fleet of worker processes.

:class:`~repro.serve.shard.ShardedEngine` runs N sessions behind one
thread pool in one interpreter — which leaves CPU-bound certainty checking
(the trichotomy procedures are pure Python) GIL-bound.  The problem and
instance documents already cross process boundaries losslessly, so the
step to real parallelism is a *transport* change, not an engine change:
:class:`FleetEngine` keeps the exact decide/stats surface and the exact
consistent-hash routing (the same :class:`~repro.serve.shard.HashRing`,
keyed on the canonical **class digest**, so a fleet agrees with an
in-process engine on every placement), but each shard is a worker
*process* owning a private plan cache — requests travel over the
JSON-lines wire protocol to the worker's loopback socket.

Invariants:

* **routing** — ring on the class digest; renamed twins land on one
  worker and share its one prepared plan; resizing to N±1 remaps ~1/N of
  the class space (the rest keep their warm caches);
* **failure** — a dead worker is respawned (request path and heartbeat);
  a request that hit the dead socket is retried once against the respawned
  worker, and if that also fails the caller gets a structured error
  (:class:`~repro.exceptions.WorkerUnavailableError` → the ``unavailable``
  envelope code through a front server) — never a hang, never a silent
  drop.  Retrying is safe: decides are pure functions of problem +
  instance;
* **observability** — :meth:`FleetEngine.stats` rebuilds every worker's
  :class:`~repro.engine.EngineStats` from its ``stats`` verb, so fleet
  fronts aggregate and re-export Prometheus pages exactly like the
  in-process path; :meth:`FleetEngine.merged_stats` folds them into one
  fleet-wide view (:func:`~repro.engine.engine.merge_engine_stats`);
* **drain** — :meth:`FleetEngine.close` drains workers through the
  ``shutdown`` verb (in-flight micro-batches finish) before joining them.

A worker does *not* re-run the micro-batcher on fleet traffic: the front
groups, the worker executes ``decide_batch`` — one wire round-trip per
micro-batch, one plan-cache lookup per batch on the worker.
"""

from __future__ import annotations

import contextlib
import logging
import threading
import time
from dataclasses import dataclass

from ..api.decision import BatchDecision, Decision
from ..api.problem import Problem
from ..core.classify import Classification, classify
from ..db.instance import DatabaseInstance
from ..engine.engine import EngineStats, merge_engine_stats
from ..engine.metrics import MetricsSnapshot, merge_snapshots
from ..exceptions import WorkerUnavailableError
from ..obs.log import get_logger, log_event
from ..obs.trace import current_trace_id, recorder
from .client import ServeClient
from .protocol import MUTATION_VERBS, Request, replay_safe
from .shard import HashRing, ShardStats, ref_digest

_logger = get_logger("serve.fleet")


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the process fleet (the worker-side server knobs live on
    the per-worker :class:`~repro.serve.server.ServerConfig`)."""

    replicas: int = 64  # virtual ring points per worker
    request_timeout: float = 120.0  # per wire call; bounds every hang
    spawn_timeout: float = 60.0  # readiness-handshake deadline
    heartbeat_seconds: float = 1.0  # liveness-check cadence (0: off)
    respawn: bool = True  # replace dead workers
    drain_timeout: float = 10.0  # graceful-stop deadline per worker

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")


class _WorkerSession:
    """One worker's :class:`~repro.api.Session`-shaped proxy.

    What :meth:`FleetEngine.session` hands the micro-batcher: only the
    executable slice of the session surface, forwarded over the wire.
    (No ``engine`` attribute — the plan cache lives in the worker, so
    local spelling attribution is skipped for fleet shards.)
    """

    __slots__ = ("_fleet", "_shard")

    def __init__(self, fleet: "BaseWorkerFleet", shard: int):
        self._fleet = fleet
        self._shard = shard

    def decide(self, problem: Problem, db: DatabaseInstance) -> Decision:
        result = self._hop(
            "decide", problem=problem, instance=db
        )
        return Decision.from_dict(result["decision"])

    def decide_batch(self, problem: Problem, dbs) -> BatchDecision:
        result = self._hop(
            "decide_batch", problem=problem, instances=list(dbs),
        )
        return BatchDecision.from_dict(result["batch"])

    def _hop(self, verb: str, **payload) -> dict:
        """One wire hop to the worker, carrying the ambient trace id (set
        by the front's micro-batcher) and recorded as the front-side
        ``transport`` span — the worker records its own ``solve``."""
        trace_id = current_trace_id()
        start = time.perf_counter()
        result = self._fleet._request(
            self._shard, verb, trace_id=trace_id, **payload
        )
        recorder().record(
            trace_id, "transport", time.perf_counter() - start,
            labels={"worker": str(self._shard)},
        )
        return result


class BaseWorkerFleet:
    """The :class:`ShardedEngine` surface over *remote* workers, with the
    transport abstracted behind a **worker provider**.

    The provider is the only thing that differs between a loopback
    process fleet and a distributed cluster.  It must expose:

    ``n_workers`` (property)
        how many workers the fleet currently routes over;
    ``ensure_alive(shard) -> handle``
        the shard's current endpoint — any object with ``host``, ``port``
        and ``generation`` attributes (a
        :class:`~repro.serve.supervisor.WorkerHandle` or a
        :class:`~repro.cluster.RemoteWorkerHandle`).  ``generation`` must
        change whenever the endpoint does: the connection cache keys on
        it, so a stale client is never reused against a new worker;
    ``restart(shard, observed_generation) -> handle``
        recover the shard after a transport failure.  A local supervisor
        respawns the process (generation CAS); a cluster membership can
        only hand back a *newer* registration if one arrived, else raise
        :class:`~repro.exceptions.WorkerUnavailableError` — either way
        the caller retries at most once and never hangs;
    ``stop()``
        release every worker this provider owns.

    Everything above the provider — ring routing, the respawn-aware
    retried wire call, replay-safety gating, ref affinity, stats/trace
    merging — is identical for both transports and lives here.
    Thread-safe: per-worker connections are lock-protected, and the
    asyncio front drives this from its thread pool exactly like a
    :class:`ShardedEngine`.
    """

    def __init__(
        self,
        provider,
        ring: HashRing | None,
        *,
        config: FleetConfig | None = None,
        client_auth: str | None = None,
        client_ssl=None,
    ):
        self.config = config or FleetConfig()
        self._provider = provider
        self._ring = ring
        self._client_auth = client_auth
        self._client_ssl = client_ssl
        self._clients: dict[int, tuple[int, ServeClient]] = {}
        self._client_locks: dict[int, threading.Lock] = {}
        self._state_lock = threading.Lock()
        self._closed = False

    # -- routing -------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._provider.n_workers

    def _require_ring(self) -> HashRing:
        ring = self._ring
        if ring is None:
            raise WorkerUnavailableError(
                "the fleet has no workers to route to (none registered "
                "yet, or all evicted); the request was not executed"
            )
        return ring

    def shard_for(self, problem: Problem) -> int:
        """The worker owning *problem*'s canonical class (deterministic,
        and identical to an in-process :class:`ShardedEngine` of the same
        width)."""
        return self._require_ring().shard_for(problem.fingerprint.digest)

    def shard_for_ref(self, ref: str) -> int:
        """The worker owning the named instance *ref* (ref-affinity:
        decides by reference go where the instance and its incremental
        states live, agreeing with :class:`ShardedEngine` placement)."""
        return self._require_ring().shard_for(ref_digest(ref))

    def session(self, shard: int) -> _WorkerSession:
        """The shard's session-shaped worker proxy."""
        return _WorkerSession(self, shard)

    # -- the wire call with respawn-aware retry ------------------------------

    def _client_lock(self, shard: int) -> threading.Lock:
        with self._state_lock:
            lock = self._client_locks.get(shard)
            if lock is None:
                lock = self._client_locks[shard] = threading.Lock()
            return lock

    def _connected_client(self, shard: int) -> tuple[int, ServeClient]:
        """A client bound to the shard's *current* worker generation
        (caller must hold the shard's client lock)."""
        handle = self._provider.ensure_alive(shard)
        entry = self._clients.get(shard)
        if entry is not None and entry[0] == handle.generation:
            return entry
        self._drop_client(shard)
        client = ServeClient(
            handle.host, handle.port, timeout=self.config.request_timeout,
            auth_secret=self._client_auth, ssl_context=self._client_ssl,
        )
        self._clients[shard] = (handle.generation, client)
        return self._clients[shard]

    def _drop_client(self, shard: int) -> None:
        """Discard the shard's cached connection (caller must hold the
        shard's client lock).  A transport failure must always drop the
        connection, even when the worker itself stayed alive — e.g. it
        answered a connection-scoped error and hung up, or the socket
        timed out and is no longer line-synchronized — otherwise the
        broken client would be reused forever."""
        entry = self._clients.pop(shard, None)
        if entry is not None:
            try:
                entry[1].close()
            except OSError:
                pass

    def _abort_connections(self, generations: set[int]) -> None:
        """Force-close cached connections to the given worker
        generations *without* taking the per-shard client locks.

        A request currently blocked on such a connection — e.g. a stats
        fan-out into a worker frozen mid-flight — would otherwise hold
        its shard's client lock for the full ``request_timeout``,
        wedging every later request to whichever worker now occupies
        that shard index.  Closing the socket out-of-band makes the
        blocked call fail immediately; its own failure path then drops
        the entry and redials the shard's *current* worker."""
        with self._state_lock:
            doomed = [
                client
                for generation, client in self._clients.values()
                if generation in generations
            ]
        for client in doomed:
            # abort(), not close(): close() flushes the buffered stream
            # and would deadlock against the very read we are breaking
            client.abort()

    def _request(self, shard: int, verb: str, **payload) -> dict:
        """One wire request to *shard*, retrying once across a respawn.

        Transport failures (refused, reset, EOF — the signature of a
        crashed or restarting worker) trigger a respawn-and-retry;
        structured :class:`~repro.exceptions.RemoteError` envelopes
        propagate untouched (the worker answered).  The second transport
        failure raises :class:`WorkerUnavailableError`.
        """
        if self._closed:
            raise WorkerUnavailableError("the fleet engine is closed")
        with self._client_lock(shard):
            generation, client = self._connected_client(shard)
            try:
                return client.request(verb, **payload)
            except Exception as first:
                if not _is_transport(first):
                    raise  # RemoteError and friends: the worker answered
                self._drop_client(shard)
                if not replay_safe(verb, payload.get("expect_version")):
                    # a mutation that died in flight may or may not have
                    # been applied; replaying it could double-apply (a
                    # CAS-guarded patch is the exception — the version
                    # precondition turns a replay into a structured
                    # conflict).  Fail loudly instead of guessing.
                    log_event(
                        _logger, logging.ERROR, "fleet.no_replay",
                        shard=shard, verb=verb, generation=generation,
                        error=type(first).__name__,
                    )
                    raise WorkerUnavailableError(
                        f"worker {shard} transport failed mid-mutation "
                        f"({verb!r} is not safely replayable without a "
                        f"version precondition): {first}"
                    ) from first
                log_event(
                    _logger, logging.WARNING, "fleet.retry",
                    shard=shard, verb=verb, generation=generation,
                    error=type(first).__name__,
                )
            # restart is a generation CAS: it respawns only if the worker
            # really died; if it merely hung up on us, the fresh
            # connection below is the whole repair
            self._provider.restart(shard, generation)
            _, client = self._connected_client(shard)
            try:
                return client.request(verb, **payload)
            except Exception as second:
                if not _is_transport(second):
                    raise
                self._drop_client(shard)
                log_event(
                    _logger, logging.ERROR, "fleet.unavailable",
                    shard=shard, verb=verb,
                    error=type(second).__name__,
                )
                raise WorkerUnavailableError(
                    f"worker {shard} failed twice across a respawn: "
                    f"{second}"
                ) from second

    # -- the session surface, routed -----------------------------------------

    def decide(self, problem: Problem, db: DatabaseInstance) -> Decision:
        return self.session(self.shard_for(problem)).decide(problem, db)

    def decide_batch(self, problem: Problem, dbs) -> BatchDecision:
        return self.session(self.shard_for(problem)).decide_batch(
            problem, dbs
        )

    def classify(self, problem: Problem) -> Classification:
        """Theorem 12 classification — computed locally (it is pure and
        solver-free), exactly as :meth:`repro.api.Session.classify` does."""
        return classify(problem.query, problem.fks)

    def explain(self, problem: Problem) -> str:
        """The owning worker's plan summary (compiles on the worker)."""
        shard = self.shard_for(problem)
        return self._request(shard, "explain", problem=problem)["plan"]

    # -- named instances (the worker's repro.store slice) --------------------

    def decide_ref(
        self,
        shard: int,
        problem: Problem,
        ref: str,
        trace_id: str | None = None,
    ) -> dict:
        """A ref-decide on the owning worker; returns the worker's whole
        result payload (``decision`` + ``instance`` provenance)."""
        start = time.perf_counter()
        result = self._request(
            shard, "decide", problem=problem, instance_ref=ref,
            trace_id=trace_id,
        )
        recorder().record(
            trace_id, "transport", time.perf_counter() - start,
            labels={"worker": str(shard)},
        )
        return result

    def instance_request(self, request: Request) -> dict:
        """Forward one registry verb to the owning worker (``list`` fans
        out over every worker and merges).  The payloads pass through as
        raw wire documents — the front never materializes the instance."""
        verb = request.verb
        if verb == "instance_list":
            instances: list[dict] = []
            stats: dict[str, float] = {}
            for shard in range(self.n_shards):
                payload = self._request(shard, "instance_list")
                instances.extend(payload.get("instances") or [])
                for key, value in (payload.get("stats") or {}).items():
                    if isinstance(value, (int, float)):
                        stats[key] = stats.get(key, 0) + value
            return {"instances": instances, "stats": stats}
        mutation = verb in MUTATION_VERBS
        # mutations serialize against whole-ring rebalances: routing by the
        # ring and landing on the routed worker must be one atomic step, or
        # a put/patch racing a member leave can land on a worker whose refs
        # were already migrated away — applied, then silently lost
        with self._mutation_gate() if mutation else contextlib.nullcontext():
            shard = self.shard_for_ref(request.instance_ref)
            result = self._request(
                shard, verb,
                instance_ref=request.instance_ref,
                instance=request.instance,
                delta=request.delta,
                expect_version=request.expect_version,
                version=request.version,
            )
            if isinstance(result, dict):
                result["shard"] = shard  # the worker index, not its local 0
            if mutation:
                self._on_mutation(request, result)
        return result

    def _mutation_gate(self):
        """The context mutations run under.  The base fleet needs no gate
        (resize is caller-serialized); the cluster engine returns its
        rebalance lock so a mutation can never interleave with a live
        join/leave migration."""
        return contextlib.nullcontext()

    def _on_mutation(self, request: Request, result: dict) -> None:
        """Hook: one registry mutation just applied on its routed owner.
        The cluster engine enqueues replica mirroring here; the base
        fleet does nothing."""

    def replica_inventory(self) -> dict:
        """Every *reachable* worker's replica side-store metadata, tagged
        with the worker index — the ``replica_inventory`` fan-out a
        controller answers with (and the census half of replica repair
        planning).  One unreachable worker must not fail the whole
        inventory — a cold-restarted controller reads this while the
        fleet may still be re-registering — so transport failures are
        logged and surfaced in ``unreachable``, and the caller gets the
        partial picture."""
        replicas: list[dict] = []
        unreachable: list[int] = []
        for shard in range(self.n_shards):
            try:
                payload = self._request(shard, "replica_inventory")
            except Exception as error:
                unreachable.append(shard)
                log_event(
                    _logger, logging.WARNING, "fleet.inventory.skipped",
                    shard=shard, error=type(error).__name__,
                )
                continue
            for info in payload.get("replicas") or []:
                replicas.append({**info, "worker": shard})
        return {"replicas": replicas, "unreachable": unreachable}

    # -- observability -------------------------------------------------------

    def stats(self) -> tuple[ShardStats, ...]:
        """Every worker's engine stats, rebuilt from its ``stats`` verb."""
        entries = []
        for shard in range(self.n_shards):
            payload = self._request(shard, "stats")
            worker_shards = payload.get("shards") or []
            merged = merge_engine_stats(
                EngineStats.from_dict(entry) for entry in worker_shards
            )
            entries.append(ShardStats(shard=shard, stats=merged))
        return tuple(entries)

    def merged_stats(self) -> EngineStats:
        """One fleet-wide :class:`EngineStats` over every worker."""
        return merge_engine_stats(entry.stats for entry in self.stats())

    def trace(self, trace_id: str) -> list[dict]:
        """Every worker-side span still retained for *trace_id* (as
        :meth:`~repro.obs.Span.to_dict` documents).  A worker that cannot
        answer is skipped — a partial trace beats none."""
        spans: list[dict] = []
        for shard in range(self.n_shards):
            try:
                payload = self._request(shard, "trace", trace_id=trace_id)
            except Exception:
                continue
            spans.extend(payload.get("spans") or [])
        return spans

    def worker_phases(self) -> dict[str, MetricsSnapshot]:
        """The fleet-wide per-phase latency aggregates: every worker's
        ``stats`` phases, merged by phase name."""
        merged: dict[str, MetricsSnapshot] = {}
        for shard in range(self.n_shards):
            try:
                payload = self._request(shard, "stats")
            except Exception:
                continue
            for name, entry in (payload.get("phases") or {}).items():
                snapshot = MetricsSnapshot.from_dict(entry)
                if name in merged:
                    snapshot = merge_snapshots([merged[name], snapshot])
                merged[name] = snapshot
        return merged

    # -- instance migration (shared by resize and cluster rebalance) ---------

    def _collect_moves(
        self, old_n: int, n_workers: int, new_ring: HashRing
    ) -> list[dict]:
        """Snapshot every stored instance that will change owner, while
        its current worker is still up (shrink retires workers — their
        refs must be read *before* the supervisor stops them)."""
        moves: list[dict] = []
        for shard in range(old_n):
            try:
                payload = self._request(shard, "instance_list")
            except Exception as error:
                log_event(
                    _logger, logging.WARNING, "fleet.migrate.list_failed",
                    shard=shard, error=type(error).__name__,
                )
                continue
            for info in payload.get("instances") or []:
                ref = info.get("ref")
                if not isinstance(ref, str) or not ref:
                    continue
                target = new_ring.shard_for(ref_digest(ref))
                if target == shard and shard < n_workers:
                    continue  # owner unchanged and surviving: stays put
                try:
                    doc = self._request(
                        shard, "instance_get", instance_ref=ref
                    )
                except Exception as error:
                    log_event(
                        _logger, logging.WARNING, "fleet.migrate.snapshot",
                        shard=shard, ref=ref, error=type(error).__name__,
                    )
                    continue
                moves.append({
                    "ref": ref,
                    "source": shard,
                    "target": target,
                    "version": doc.get("version"),
                    "instance": doc.get("instance"),
                })
        return moves

    def _migrate(self, moves: list[dict], n_workers: int) -> None:
        """Re-home the snapshotted instances on the post-resize fleet."""
        for move in moves:
            try:
                self._request(
                    move["target"], "instance_put",
                    instance_ref=move["ref"],
                    instance=move["instance"],
                    version=move["version"],
                )
            except Exception as error:
                log_event(
                    _logger, logging.WARNING, "fleet.migrate.put_failed",
                    shard=move["target"], ref=move["ref"],
                    error=type(error).__name__,
                )
                continue
            if move["source"] < n_workers:
                try:
                    self._request(
                        move["source"], "instance_drop",
                        instance_ref=move["ref"],
                    )
                except Exception as error:
                    log_event(
                        _logger, logging.WARNING, "fleet.migrate.drop",
                        shard=move["source"], ref=move["ref"],
                        error=type(error).__name__,
                    )
        if moves:
            log_event(
                _logger, logging.INFO, "fleet.migrate",
                workers=n_workers, moved=len(moves),
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain every worker and release the connections (idempotent)."""
        self._closed = True
        with self._state_lock:
            clients = [client for _, client in self._clients.values()]
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:
                pass
        self._provider.stop()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "BaseWorkerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"{type(self).__name__}({state}, workers={self.n_shards})"


class FleetEngine(BaseWorkerFleet):
    """*N* locally spawned worker processes behind the fleet surface.

    The provider here is a :class:`~repro.serve.supervisor.FleetSupervisor`
    — pipe-spawned loopback processes with readiness handshakes, heartbeat
    respawn and drain-on-stop.  Retry/respawn semantics are exactly the
    base class's: this subclass only adds spawning and tail-resize.
    """

    def __init__(
        self,
        n_workers: int = 2,
        worker_config=None,
        *,
        config: FleetConfig | None = None,
    ):
        from .server import ServerConfig
        from .supervisor import FleetSupervisor

        config = config or FleetConfig()
        if worker_config is None:
            worker_config = ServerConfig(host="127.0.0.1", port=0, shards=1)
        if worker_config.port != 0:
            raise ValueError(
                "worker_config.port must be 0 (each worker binds its own "
                "ephemeral loopback port)"
            )
        self._worker_config = worker_config
        supervisor = FleetSupervisor(
            worker_config,
            n_workers,
            spawn_timeout=config.spawn_timeout,
            heartbeat_seconds=config.heartbeat_seconds,
            respawn=config.respawn,
            drain_timeout=config.drain_timeout,
        )
        super().__init__(
            supervisor,
            HashRing(n_workers, replicas=config.replicas),
            config=config,
        )

    @property
    def supervisor(self):
        return self._provider

    # -- resizing ------------------------------------------------------------

    def resize(self, n_workers: int) -> "FleetEngine":
        """Grow or shrink the fleet; ~1/N of class digests remap.

        Named instances follow the ring: before the worker set changes,
        every ref whose owner moves (or whose worker is being retired) is
        snapshotted at its current version, then re-``put`` — version
        preserved, so client CAS preconditions keep holding — on its new
        owner and dropped from the surviving old one.  The per-``(plan,
        ref)`` incremental states do not migrate (they rebuild from the
        instance on the next ref-decide); the delta *log* restarts at the
        migrated version, which only costs a rebuild, never an answer.
        Migration is best-effort: a ref that cannot be snapshotted or
        re-put is logged and becomes ``unknown-instance`` on its new
        owner — the same contract as an eviction.
        """
        old_n = self.n_shards
        new_ring = HashRing(n_workers, replicas=self.config.replicas)
        moves = (
            self._collect_moves(old_n, n_workers, new_ring)
            if n_workers != old_n
            else []
        )
        self._provider.resize(n_workers)
        with self._state_lock:
            self._ring = new_ring
            for shard in list(self._clients):
                if shard >= n_workers:
                    _, client = self._clients.pop(shard)
                    try:
                        client.close()
                    except OSError:
                        pass
        self._migrate(moves, n_workers)
        return self


def _is_transport(error: Exception) -> bool:
    """Whether *error* is a transport failure worth a respawn-and-retry
    (as opposed to an application error that would just recur)."""
    from ..exceptions import ServeProtocolError

    return isinstance(error, (OSError, ServeProtocolError, EOFError))
