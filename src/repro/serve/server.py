"""The asyncio certainty server: queueing, micro-batching, sharded execution.

The event loop owns only coordination: it reads JSON-line frames, decodes
payloads, groups concurrent ``decide`` requests **by canonical class
fingerprint** into micro-batches (renaming-isomorphic spellings share a
group), and hands each batch to the owning shard's ``decide_batch`` on a
thread pool (the engine's decision procedures are plain Python, so the
loop must never run them inline).  The shard is an in-process
:class:`~repro.serve.shard.ShardedEngine` session by default, or a worker
process of a :class:`~repro.serve.fleet.FleetEngine` with
``processes > 0`` — the batcher cannot tell the difference.  Responses
are written back per connection as they complete — clients pipeline, the
batcher reorders, the echoed request id restores the correspondence.

Drain semantics (the shutdown invariant): stop accepting, flush every
open micro-batch and wait for in-flight engine batches, EOF idle
connections, join the connection handlers, then close the engine (which,
for a fleet, drains the worker processes the same way).  A ``shutdown``
verb is answered *before* the drain begins.

Micro-batching policy: the first ``decide`` of a fingerprint opens a group
and arms a linger timer (``linger_ms``); every further request for the
same fingerprint joins the group until it reaches ``max_batch`` (flush
now) or the timer fires (flush what arrived).  One group = one
``decide_batch`` call = one plan-cache lookup and one warm prepared
solver, however many requests were folded in — the per-request answer
carries the group size as ``micro_batch`` so clients can observe the
amortization.

Lifecycle: :func:`run_server` for the CLI (runs until interrupted or a
``shutdown`` verb arrives); :class:`BackgroundServer` for tests, examples
and benchmarks (the same server on a daemon thread with a ready handshake).
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..api.decision import Decision
from ..api.problem import Problem
from ..api.session import SessionConfig
from ..db import io as db_io
from ..db.instance import DatabaseInstance
from ..engine.metrics import merge_snapshots
from ..exceptions import (
    ServeProtocolError,
    ServerOverloadedError,
    UnauthorizedError,
    UnknownInstanceError,
)
from ..obs.log import (
    LOG_FORMATS,
    LOG_LEVELS,
    get_logger,
    log_event,
    setup_logging,
)
from ..obs.trace import configure_recorder, recorder, trace_context
from ..store.delta import Delta
from .protocol import (
    MUTATION_VERBS,
    PROTOCOL,
    VERBS,
    VERSION,
    Request,
    UnsupportedVerbError,
    decode_frame,
    decode_request,
    encode_frame,
    error_code_for,
    error_response,
    ok_response,
)

# Frames above this size have their JSON/payload decoding offloaded to the
# thread pool so a multi-megabyte instance document never stalls the event
# loop (small frames stay inline: a pool round-trip costs more than the
# parse).
_OFFLOAD_FRAME_BYTES = 64 * 1024
from .autoscale import AutoscaleConfig, Autoscaler, AutoscaleSample
from .shard import ShardedEngine

_logger = get_logger("serve.server")

#: Verbs the admission budgets apply to: the ones that reach the engine
#: and can pile up behind it.  Control-plane verbs (ping/stats/metrics/
#: trace/shutdown) and the registry verbs always answer — an operator
#: must be able to inspect and drain an overloaded server.
_BUDGETED_VERBS = frozenset({"decide", "decide_batch"})

#: Bind addresses that never leave the host: safe without authentication.
_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "::1", "localhost"})


def is_loopback(host: str) -> bool:
    """Does *host* name the loopback interface (never leaves the machine)?"""
    return host in _LOOPBACK_HOSTS or host.startswith("127.")


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving layer.

    ``processes=0`` (the default) serves through in-process thread shards
    (:class:`~repro.serve.shard.ShardedEngine`); ``processes=N`` serves
    through *N* worker processes (:class:`~repro.serve.fleet.FleetEngine`
    — one single-shard engine per process), which ``shards`` then does not
    apply to.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick (the bound port is reported)
    shards: int = 4
    processes: int = 0  # 0: thread shards; N: process-per-shard fleet
    fo_backend: str = "memory"  # or "sql"
    plan_cache_size: int = 128  # per shard
    max_batch: int = 32  # flush a micro-batch at this size
    linger_ms: float = 1.0  # ... or this long after its first request
    max_workers: int | None = None  # thread pool size; None: one per shard
    max_frame_bytes: int = 16 * 1024 * 1024  # per-line stream buffer cap
    store_bytes: int = 64 * 1024 * 1024  # instance-registry byte budget
    log_level: str = "warning"  # repro.obs.log level for the server process
    log_format: str = "human"  # "human" or "json"
    span_log: str | None = None  # JSON-lines span sink (front process only)
    # -- admission control (0 disables a budget; see docs/deployment.md) --
    max_inflight: int = 0  # global admitted-but-unanswered decide budget
    max_connection_inflight: int = 0  # the same budget, per connection
    retry_after_ms: int = 50  # base of the overloaded envelope's hint
    # -- metrics-driven autoscaling (fleet fronts only) --
    autoscale: AutoscaleConfig | None = None
    # -- transport hardening (required for non-loopback binds) --
    auth_secret: str | None = None  # shared-secret HMAC handshake
    tls_cert: str | None = None  # PEM cert chain (enables TLS)
    tls_key: str | None = None  # PEM private key

    def __post_init__(self) -> None:
        if self.log_level not in LOG_LEVELS:
            raise ValueError(
                f"unknown log_level {self.log_level!r}; expected one of "
                f"{sorted(LOG_LEVELS)}"
            )
        if self.log_format not in LOG_FORMATS:
            raise ValueError(
                f"unknown log_format {self.log_format!r}; expected one of "
                f"{LOG_FORMATS}"
            )
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.processes < 0:
            raise ValueError(
                f"processes must be non-negative, got {self.processes}"
            )
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.linger_ms < 0:
            raise ValueError(
                f"linger_ms must be non-negative, got {self.linger_ms}"
            )
        if self.max_frame_bytes < 1024:
            raise ValueError(
                f"max_frame_bytes must be at least 1024, got "
                f"{self.max_frame_bytes}"
            )
        if self.store_bytes < 1:
            raise ValueError(
                f"store_bytes must be positive, got {self.store_bytes}"
            )
        if self.max_inflight < 0:
            raise ValueError(
                f"max_inflight must be non-negative (0 disables), got "
                f"{self.max_inflight}"
            )
        if self.max_connection_inflight < 0:
            raise ValueError(
                f"max_connection_inflight must be non-negative (0 "
                f"disables), got {self.max_connection_inflight}"
            )
        if self.retry_after_ms < 1:
            raise ValueError(
                f"retry_after_ms must be positive, got {self.retry_after_ms}"
            )
        if self.autoscale is not None and self.processes < 1:
            raise ValueError(
                "autoscale needs a process fleet (processes >= 1): thread "
                "shards cannot be resized live"
            )
        if not is_loopback(self.host) and not self.auth_secret:
            raise ValueError(
                f"refusing to bind {self.host!r} without authentication: "
                "a non-loopback listener is reachable from the network, so "
                "it requires auth_secret (repro serve --secret / "
                "REPRO_CLUSTER_SECRET); loopback binds stay open"
            )
        if (self.tls_cert is None) != (self.tls_key is None):
            raise ValueError(
                "tls_cert and tls_key must be configured together"
            )

    def session_config(self) -> SessionConfig:
        return SessionConfig(
            plan_cache_size=self.plan_cache_size,
            fo_backend=self.fo_backend,
        )

    @property
    def engine_width(self) -> int:
        """How many shards the front routes over (workers or sessions)."""
        return self.processes if self.processes > 0 else self.shards

    def worker_config(self) -> "ServerConfig":
        """The per-worker server config of a process fleet: one shard,
        a private ephemeral loopback socket, no nested fleet, and no
        linger (the front already grouped; a worker must answer the
        batches it is handed immediately).

        The worker's frame cap is the front's times ``max_batch``: the
        micro-batcher may fold that many client frames — each within the
        front's cap — into one ``decide_batch`` frame on the private
        worker socket, and the aggregate must never bounce off the
        worker's own reader.
        """
        return ServerConfig(
            host="127.0.0.1",
            port=0,
            shards=1,
            processes=0,
            fo_backend=self.fo_backend,
            plan_cache_size=self.plan_cache_size,
            max_batch=self.max_batch,
            linger_ms=0.0,
            max_frame_bytes=self.max_frame_bytes * self.max_batch,
            # each worker owns the registry slice of the refs that hash to
            # it, so the per-worker budget is the whole configured budget
            store_bytes=self.store_bytes,
            # workers log with the front's verbosity (their stderr is
            # captured by the supervisor for crash forensics); the span
            # ring is per-process, but the JSON-lines sink is front-only
            # so concurrent workers never interleave on one file
            log_level=self.log_level,
            log_format=self.log_format,
            # admission stays off on workers (the defaults): the front
            # already shed what the fleet cannot absorb, and a worker
            # shedding a forwarded micro-batch would surface as a spurious
            # error to requests the front *did* admit
        )


class ServerMetrics:
    """Thread-safe serving counters (the `stats` verb's ``server`` block)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.micro_batches = 0
        self.batched_requests = 0  # requests that shared their micro-batch
        self.shed = 0  # requests rejected at admission (overloaded)
        self.shed_scopes: dict[str, int] = {}  # which budget tripped
        self.verbs: dict[str, int] = {}

    def count_request(self, verb: str) -> None:
        with self._lock:
            self.requests += 1
            self.verbs[verb] = self.verbs.get(verb, 0) + 1

    def count_error(self) -> None:
        with self._lock:
            self.errors += 1

    def count_micro_batch(self, size: int) -> None:
        with self._lock:
            self.micro_batches += 1
            if size > 1:
                self.batched_requests += size

    def count_shed(self, scope: str) -> None:
        """One request shed at admission (*scope*: which budget tripped,
        ``server`` or ``connection``).  The generic error counter still
        ticks separately — a shed answer is an error envelope too."""
        with self._lock:
            self.shed += 1
            self.shed_scopes[scope] = self.shed_scopes.get(scope, 0) + 1

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "micro_batches": self.micro_batches,
                "batched_requests": self.batched_requests,
                "shed": self.shed,
                "shed_scopes": dict(self.shed_scopes),
                "verbs": dict(self.verbs),
            }


class _PendingGroup:
    """One open micro-batch: a class's queued instances + futures.

    Items carry the requesting spelling's raw fingerprint so each response
    reports the exact spelling it answered, even when renaming-isomorphic
    twins folded into the same batch — plus the request's trace id and
    enqueue time, so the flush can attribute ``batch_linger`` per request.
    """

    __slots__ = ("problem", "shard", "items", "timer")

    def __init__(self, problem: Problem, shard: int):
        self.problem = problem
        self.shard = shard
        self.items: list[
            tuple[DatabaseInstance, str, asyncio.Future, str | None, float]
        ] = []
        self.timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Group concurrent same-class decides into one engine batch.

    Grouping keys on the canonical **class** fingerprint, so isomorphic
    spellings of one problem share a micro-batch (and the shard's one
    prepared plan); instances are already transported into the canonical
    spelling by the dispatcher.  Lives entirely on the event loop (no
    locks); execution happens on the server's thread pool against the
    owning shard.
    """

    def __init__(
        self,
        sharded: ShardedEngine,
        pool: ThreadPoolExecutor,
        metrics: ServerMetrics,
        *,
        max_batch: int,
        linger_seconds: float,
    ):
        self._sharded = sharded
        self._pool = pool
        self._metrics = metrics
        self._max_batch = max_batch
        self._linger = linger_seconds
        self._pending: dict[str, _PendingGroup] = {}
        self._inflight: set[asyncio.Future] = set()

    @property
    def queue_depth(self) -> int:
        """Requests sitting in open (not yet flushed) micro-batch groups —
        the ``repro_server_queue_depth`` gauge and the autoscaler's
        primary scale-up signal."""
        return sum(len(group.items) for group in self._pending.values())

    async def submit(
        self,
        problem: Problem,
        db: DatabaseInstance,
        trace_id: str | None = None,
    ) -> dict:
        """Queue one decide; resolves with the per-request result payload.

        *db* must already be transported into *problem*'s canonical
        spelling (the dispatcher does this next to payload decoding).
        """
        loop = asyncio.get_running_loop()
        digest = problem.fingerprint.digest  # the class digest
        group = self._pending.get(digest)
        if group is None:
            # execute the batch under the *canonical* problem: its own
            # transport maps only canonical relation names, so the
            # already-transported instances (stray relations included)
            # pass through the session untouched — the group opener's raw
            # spelling must not be re-applied to twins' instances
            group = _PendingGroup(
                problem.canonical.problem, self._sharded.shard_for(problem)
            )
            self._pending[digest] = group
            if self._linger > 0:
                group.timer = loop.call_later(
                    self._linger,
                    lambda pending=group: loop.create_task(
                        self._flush(digest, expected=pending)
                    ),
                )
        future: asyncio.Future = loop.create_future()
        group.items.append(
            (db, problem.fingerprint.raw, future, trace_id,
             time.perf_counter())
        )
        if len(group.items) >= self._max_batch or self._linger == 0:
            await self._flush(digest)
        return await future

    async def _flush(
        self, digest: str, expected: _PendingGroup | None = None
    ) -> None:
        group = self._pending.get(digest)
        if group is None:  # already flushed by the size trigger
            return
        if expected is not None and group is not expected:
            # a stale linger-timer task: its group was size-flushed and a
            # successor group formed under the same digest — leave the
            # successor its own linger window
            return
        del self._pending[digest]
        if group.timer is not None:
            group.timer.cancel()
        loop = asyncio.get_running_loop()
        dbs = [db for db, _, _, _, _ in group.items]
        raws = [raw for _, raw, _, _, _ in group.items]
        futures = [f for _, _, f, _, _ in group.items]
        trace_ids = [tid for _, _, _, tid, _ in group.items]
        flushed_at = time.perf_counter()
        spans = recorder()
        for (_, _, _, tid, enqueued) in group.items:
            spans.record(
                tid, "batch_linger", flushed_at - enqueued,
                labels={"class": digest},
            )
        self._metrics.count_micro_batch(len(dbs))
        session = self._sharded.session(group.shard)

        def _execute():
            # queue_wait = flush → thread-pool pick-up; the solve span is
            # recorded by the session under the ambient trace context —
            # attributed to the group's first traced request (one batch,
            # one engine call).  Context vars do not cross executor
            # threads, so the context is re-entered here.
            started = time.perf_counter()
            for tid in trace_ids:
                spans.record(
                    tid, "queue_wait", started - flushed_at,
                    labels={"class": digest},
                )
            opener = next((t for t in trace_ids if t), None)
            with trace_context(opener):
                return session.decide_batch(group.problem, dbs)

        run = loop.run_in_executor(self._pool, _execute)
        self._inflight.add(run)
        run.add_done_callback(self._inflight.discard)
        try:
            batch = await run
        except Exception as error:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        # the session saw only the canonical problem; attribute the
        # requesting spellings to the plan for the per-class sharing stats
        # (fleet shards have no local engine: their plan caches live in
        # the worker process, which only ever sees the canonical spelling)
        engine = getattr(session, "engine", None)
        plan = engine.cached_plan(digest) if engine is not None else None
        if plan is not None:
            for raw in set(raws):
                plan.note_spelling(raw)
        for answer, raw, future, tid in zip(
            batch.answers, raws, futures, trace_ids
        ):
            if not future.done():
                decision = Decision(
                    certain=bool(answer),
                    fingerprint=batch.fingerprint,
                    raw_fingerprint=raw,
                    verdict=batch.verdict,
                    backend=batch.backend,
                    cache_hit=batch.cache_hit,
                    # the whole micro-batch's wall clock: the time this
                    # request actually waited on the engine
                    wall_seconds=batch.wall_seconds,
                )
                payload = {
                    "decision": decision.to_dict(),
                    "shard": group.shard,
                    "micro_batch": len(batch.answers),
                }
                if tid is not None:
                    payload["trace_id"] = tid
                future.set_result(payload)

    async def drain(self) -> None:
        """Flush every open group and wait for in-flight batches (shutdown)."""
        for digest in list(self._pending):
            await self._flush(digest)
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)


class _ConnectionState:
    """Per-connection admission + auth bookkeeping (event-loop-confined)."""

    __slots__ = ("inflight", "authenticated", "nonce")

    def __init__(self) -> None:
        self.inflight = 0
        self.authenticated = False
        self.nonce: str | None = None


class CertaintyServer:
    """The asyncio JSON-lines server over a sharded engine.

    The engine is a :class:`ShardedEngine` (in-process thread shards) or,
    with ``config.processes > 0``, a
    :class:`~repro.serve.fleet.FleetEngine` (process-per-shard workers) —
    the two expose the same decide/stats surface, so everything above the
    engine (batching, verbs, observability, drain) is identical.

    With ``max_inflight``/``max_connection_inflight`` set, the engine
    verbs are admission-controlled: a request arriving while the budget
    is exhausted is *shed* — answered immediately with the ``overloaded``
    envelope and a ``retry_after_ms`` hint — instead of queued without
    bound.  Every counter lives on the event loop, so admission is
    race-free without locks.
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        if self.config.span_log:
            configure_recorder(span_log=self.config.span_log)
        self._sharded = self._build_engine()
        self._store = self._build_store()
        self._replicas = self._build_replicas()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_workers or self.config.engine_width,
            thread_name_prefix="repro-serve",
        )
        self._batcher = MicroBatcher(
            self._sharded,
            self._pool,
            self.metrics,
            max_batch=self.config.max_batch,
            linger_seconds=self.config.linger_ms / 1e3,
        )
        self._server: asyncio.base_events.Server | None = None
        self._stop = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0  # admitted engine requests not yet answered
        self._autoscaler: Autoscaler | None = None
        self._autoscale_task: asyncio.Task | None = None
        if self.config.autoscale is not None:
            self._autoscaler = Autoscaler(
                self.config.autoscale,
                resize=self._sharded.resize,
                initial_workers=self._sharded.n_shards,
            )

    def _build_engine(self):
        """The engine behind the batcher — overridden by the cluster
        controller (:class:`repro.cluster.ClusterServer`), which routes
        over *registered remote* workers instead."""
        if self.config.processes > 0:
            # imported here: fleet -> supervisor -> server is the worker's
            # import path, so the module level must stay acyclic
            from .fleet import FleetEngine

            return FleetEngine(
                self.config.processes, self.config.worker_config()
            )
        return ShardedEngine(
            self.config.shards, self.config.session_config()
        )

    def _build_store(self):
        """Thread mode holds the one instance store here; a fleet front
        (and a cluster controller) holds none — every ref hashes to a
        worker whose own server owns that slice of the registry."""
        if self.config.processes > 0:
            return None
        from ..store import InstanceStore

        return InstanceStore(max_bytes=self.config.store_bytes)

    def _build_replicas(self):
        """The replica side-store: copies of refs this server is ring
        *successor* for, held apart from the primary store so they never
        appear in ``instance_list``, never shadow a primary decide, and
        never migrate as primaries during a rebalance.  Only servers that
        own a primary store hold replicas.

        The side-store carries its own ``store_bytes`` budget — a worker
        in a replicated cluster holds up to **2×** ``store_bytes`` of ref
        payload (its primary slice plus its successor slice); size the
        process accordingly.  Under byte pressure it LRU-evicts like the
        primary store, which silently degrades that ref to one copy until
        the controller's periodic anti-entropy repair re-installs it — so
        every replica eviction is logged and counted
        (``server.replicas.evictions`` in the stats block) rather than
        dropped on the floor."""
        if self._store is None:
            return None
        from ..store.registry import InstanceRegistry

        return InstanceRegistry(
            max_bytes=self.config.store_bytes,
            on_evict=self._on_replica_evicted,
        )

    def _on_replica_evicted(self, ref: str) -> None:
        """A replica fell to the side-store's byte budget: redundancy for
        *ref* is degraded until the controller's next repair pass.  Keep
        the signal loud — the eviction is silent on the wire."""
        log_event(
            _logger, logging.WARNING, "serve.replica.evicted", ref=ref,
        )

    @property
    def sharded_engine(self) -> ShardedEngine:
        return self._sharded

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        ssl_context = None
        if self.config.tls_cert is not None:
            from ..cluster.auth import server_ssl_context

            ssl_context = server_ssl_context(
                self.config.tls_cert, self.config.tls_key
            )
        # limit= raises the 64 KiB default line cap: one frame carries a
        # whole instance document, which easily exceeds it
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_frame_bytes,
            ssl=ssl_context,
        )
        if self._autoscaler is not None:
            self._autoscale_task = asyncio.get_running_loop().create_task(
                self._autoscale_loop()
            )

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and release."""
        assert self._server is not None, "call start() first"
        await self._stop.wait()
        # Order matters: stop accepting, flush queued work, EOF the open
        # connection loops, and only then wait for the server — on
        # Python >= 3.12.1 ``wait_closed()`` blocks until every connection
        # handler finishes, so the handlers must be unblocked first.
        self._server.close()
        if self._autoscale_task is not None:
            # the loop exits on the stop event; awaiting it here means no
            # resize is mid-flight when the engine is closed below
            await self._autoscale_task
        await self._batcher.drain()
        for writer in list(self._writers):  # EOF every connection loop
            writer.close()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        await self._server.wait_closed()
        self._pool.shutdown(wait=True)
        if self._store is not None:
            self._store.close()
        self._sharded.close()

    def request_shutdown(self) -> None:
        self._stop.set()

    # -- the autoscale loop ----------------------------------------------------

    async def _autoscale_loop(self) -> None:
        """Sample → decide → (maybe) resize, every ``interval_seconds``.

        The loop-confined gauges (queue depth, inflight) are read here on
        the event loop; the tier p99s (wire calls to every worker) and
        the resize itself run on the thread pool — the loop never blocks
        on either.
        """
        autoscaler = self._autoscaler
        assert autoscaler is not None
        targets = autoscaler.config.tier_p99_targets_ms
        while True:
            try:
                await asyncio.wait_for(
                    self._stop.wait(),
                    timeout=autoscaler.config.interval_seconds,
                )
                return  # shutting down
            except asyncio.TimeoutError:
                pass  # interval elapsed: take a sample

            def _sample_and_observe(
                queue_depth=self._batcher.queue_depth,
                inflight=self._inflight,
                shed=self.metrics.to_dict()["shed"],
                workers=self._sharded.n_shards,
            ):
                tier_p99_ms: dict[str, float] = {}
                if targets:  # worker wire calls — only when targets exist
                    stats = self._sharded.merged_stats()
                    for report in stats.tiers:
                        p99 = report.metrics.p99_seconds
                        if p99 is not None:
                            tier_p99_ms[report.tier] = p99 * 1e3
                return autoscaler.observe(AutoscaleSample(
                    queue_depth=queue_depth,
                    inflight=inflight,
                    shed=shed,
                    workers=workers,
                    tier_p99_ms=tier_p99_ms,
                ))

            try:
                await self._run_on_pool(_sample_and_observe)
            except Exception as error:
                # a failed tick (e.g. a worker restarting mid-sample) must
                # not kill the loop — the next interval samples again
                log_event(
                    _logger, logging.WARNING, "autoscale.tick_failed",
                    error=type(error).__name__, detail=str(error),
                )

    # -- the connection loop -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        state = _ConnectionState()
        connection = asyncio.current_task()
        if connection is not None:
            self._connections.add(connection)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # a frame longer than max_frame_bytes: the stream is no
                    # longer line-synchronized, so report and hang up
                    self.metrics.count_error()
                    async with write_lock:
                        writer.write(
                            encode_frame(
                                error_response(
                                    None,
                                    "bad-request",
                                    "frame exceeds the server's "
                                    f"{self.config.max_frame_bytes}-byte "
                                    "limit",
                                )
                            )
                        )
                        await writer.drain()
                    break
                if not line:
                    break
                task = asyncio.create_task(
                    self._serve_frame(line, writer, write_lock, state)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if connection is not None:
                self._connections.discard(connection)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    async def _serve_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        state: _ConnectionState,
    ) -> None:
        request_id: int | str | None = None
        trace_id: str | None = None
        verb = "<undecoded>"
        started = time.perf_counter()
        error_code: str | None = None
        try:
            offload = len(line) > _OFFLOAD_FRAME_BYTES
            if offload:
                frame = await self._run_on_pool(decode_frame, line)
            else:
                frame = decode_frame(line)
            raw_id = frame.get("id")
            if isinstance(raw_id, (int, str)) and not isinstance(raw_id, bool):
                request_id = raw_id
            request = decode_request(frame)
            trace_id = request.trace_id
            verb = request.verb
            # bound the verbs counter to the protocol vocabulary so junk
            # verb strings cannot grow server memory without limit
            self.metrics.count_request(
                request.verb if request.verb in VERBS else "<unknown>"
            )
            if verb == "auth":
                result = self._handle_auth(request, state)
            else:
                if (
                    self.config.auth_secret is not None
                    and not state.authenticated
                ):
                    raise UnauthorizedError(
                        "this server requires the shared-secret handshake: "
                        "authenticate with the 'auth' verb first"
                    )
                budgeted = verb in _BUDGETED_VERBS
                if budgeted:
                    self._admit(verb, state)  # raises ServerOverloadedError
                    state.inflight += 1
                    self._inflight += 1
                try:
                    result = await self._dispatch(request, offload=offload)
                finally:
                    if budgeted:
                        state.inflight -= 1
                        self._inflight -= 1
            response = ok_response(request.id, result)
        except Exception as error:  # every failure becomes an envelope
            self.metrics.count_error()
            error_code = error_code_for(error)
            response = error_response(
                request_id, error_code, str(error),
                retry_after_ms=(
                    getattr(error, "retry_after_ms", None)
                    if error_code == "overloaded"
                    else None
                ),
            )
        respond_start = time.perf_counter()
        async with write_lock:
            try:
                writer.write(encode_frame(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; nothing to tell it
        recorder().record(
            trace_id, "respond", time.perf_counter() - respond_start,
            labels={"verb": verb},
        )
        # per-request completion line — the explicit isEnabledFor gate
        # keeps the default (WARNING) configuration free of any
        # per-request logging work, argument construction included
        if _logger.isEnabledFor(logging.INFO):
            log_event(
                _logger, logging.INFO, "request",
                verb=verb,
                id=request_id,
                trace_id=trace_id,
                ok=error_code is None,
                error=error_code,
                ms=round((time.perf_counter() - started) * 1e3, 3),
            )

    # -- the shared-secret handshake -----------------------------------------

    def _handle_auth(self, request: Request, state: _ConnectionState) -> dict:
        """The client-initiated two-step handshake (``auth`` verb).

        Step one (no ``mac``) mints a fresh per-connection nonce; step two
        proves knowledge of the shared secret with
        ``HMAC-SHA256(secret, nonce)``.  A server with no secret
        configured answers ``required: false`` so a credentialed client
        works against open loopback servers too.  A bad MAC burns the
        nonce — the client must restart the handshake.
        """
        from ..cluster.auth import new_nonce, verify_mac

        secret = self.config.auth_secret
        if secret is None:
            state.authenticated = True
            return {"required": False, "authenticated": True}
        if request.mac is None:
            state.nonce = new_nonce()
            return {"required": True, "nonce": state.nonce}
        nonce, state.nonce = state.nonce, None  # single-use challenge
        if nonce is None or not verify_mac(secret, nonce, request.mac):
            raise UnauthorizedError(
                "bad MAC (or no outstanding nonce): the handshake failed"
            )
        state.authenticated = True
        return {"required": True, "authenticated": True}

    # -- admission control ---------------------------------------------------

    def _admit(self, verb: str, state: _ConnectionState) -> None:
        """Admit or shed one engine request against the inflight budgets.

        Shedding happens *before* any decoding or queueing work, so a
        shed request costs the server one envelope write and nothing
        else — and costs the client nothing but the hinted wait: the
        request was never executed, so retrying is unconditionally safe.
        The ``retry_after_ms`` hint scales with how far over budget the
        server is (bounded, so a deep overload never hints an hour).
        """
        config = self.config
        if config.max_inflight and self._inflight >= config.max_inflight:
            scope, budget, depth = "server", config.max_inflight, self._inflight
        elif (
            config.max_connection_inflight
            and state.inflight >= config.max_connection_inflight
        ):
            scope, budget, depth = (
                "connection", config.max_connection_inflight, state.inflight
            )
        else:
            return
        pressure = min(max(depth / budget, 1.0), 8.0)
        retry_after = max(1, int(config.retry_after_ms * pressure))
        self.metrics.count_shed(scope)
        if _logger.isEnabledFor(logging.INFO):
            log_event(
                _logger, logging.INFO, "server.shed",
                verb=verb, scope=scope, budget=budget,
                inflight=self._inflight,
                queue_depth=self._batcher.queue_depth,
                retry_after_ms=retry_after,
            )
        raise ServerOverloadedError(
            f"overloaded: the {scope} inflight budget ({budget}) is "
            f"exhausted; retry after {retry_after} ms",
            retry_after_ms=retry_after,
        )

    # -- verb dispatch -------------------------------------------------------

    async def _dispatch(self, request: Request, offload: bool = False) -> dict:
        verb = request.verb
        if verb == "ping":
            return {"pong": True, "protocol": PROTOCOL, "version": VERSION}
        if verb == "stats":
            return await self._stats()
        if verb == "metrics":
            return await self._prom_metrics()
        if verb == "shutdown":
            self.request_shutdown()
            return {"stopping": True}
        if verb == "resize":
            if request.workers is None or request.workers < 1:
                raise ServeProtocolError(
                    "'resize' needs a positive 'workers' count"
                )
            resize = getattr(self._sharded, "resize", None)
            if resize is None:
                raise UnsupportedVerbError(
                    "this server's engine cannot resize live (in-process "
                    "thread shards; run --processes N or a cluster "
                    "controller)"
                )
            await self._run_on_pool(resize, request.workers)
            return {
                "workers": self._sharded.n_shards,
                "requested": request.workers,
            }
        if verb == "decide":
            if request.instance_ref is not None:
                return await self._decide_ref(request, offload=offload)
            if request.instance is None:
                self._require_problem(request)  # report the missing payload
                raise ServeProtocolError(
                    "'decide' needs an 'instance' or an 'instance_ref'"
                )
            # canonicalization + instance transport ride along with payload
            # decoding (offloaded for big frames): the batcher then groups
            # renaming-isomorphic spellings under one class key
            if offload:
                problem, db = await self._run_on_pool(
                    lambda: self._decode_decide(request)
                )
            else:
                problem, db = self._decode_decide(request)
            return await self._batcher.submit(
                problem, db, trace_id=request.trace_id
            )
        if verb == "decide_batch":
            if request.instances is None:
                self._require_problem(request)
                raise ServeProtocolError(
                    "'decide_batch' needs an 'instances' list"
                )

            def _decode_batch():
                decode_start = time.perf_counter()
                problem = self._require_problem(request)
                dbs = [db_io.from_dict(e) for e in request.instances]
                recorder().record(
                    request.trace_id, "canonicalize",
                    time.perf_counter() - decode_start,
                    labels={"class": problem.fingerprint.digest},
                )
                return problem, dbs

            if offload:
                problem, dbs = await self._run_on_pool(_decode_batch)
            else:
                problem, dbs = _decode_batch()
            shard = self._sharded.shard_for(problem)
            session = self._sharded.session(shard)

            def _run_batch():
                # context vars do not cross executor threads; re-enter so
                # the session (or the fleet's worker hop) sees the trace
                with trace_context(request.trace_id):
                    return session.decide_batch(problem, dbs)

            batch = await self._run_on_pool(_run_batch)
            result = {"batch": batch.to_dict(), "shard": shard}
            if request.trace_id is not None:
                result["trace_id"] = request.trace_id
            return result
        if verb == "trace":
            if not request.trace_id:
                raise ServeProtocolError("'trace' needs a 'trace_id'")
            spans = [
                span.to_dict()
                for span in recorder().spans_for(request.trace_id)
            ]
            # behind a fleet front, the solve spans live in the worker
            # processes' rings — collect and merge them
            collect = getattr(self._sharded, "trace", None)
            if collect is not None:
                spans.extend(
                    await self._run_on_pool(collect, request.trace_id)
                )
            spans.sort(key=lambda s: s.get("start", 0.0))
            return {"trace_id": request.trace_id, "spans": spans}
        if verb == "classify":
            problem = self._require_problem(request)
            classification = await self._run_on_pool(
                self._sharded.classify, problem
            )
            return {
                # verdict.name: the same stable token vocabulary Decision
                # uses ("FO"/"L_HARD"/"NL_HARD"), not the human prose
                "verdict": classification.verdict.name,
                "in_fo": classification.in_fo,
                "explanation": classification.explain(),
                "shard": self._sharded.shard_for(problem),
            }
        if verb == "explain":
            problem = self._require_problem(request)
            plan = await self._run_on_pool(self._sharded.explain, problem)
            return {
                "plan": plan,
                "shard": self._sharded.shard_for(problem),
            }
        if verb in MUTATION_VERBS or verb in (
            "instance_get", "instance_list"
        ):
            return await self._instance_verb(request)
        if verb in ("replicate", "replica_get", "replica_inventory",
                    "promote"):
            return await self._replica_verb(request)
        raise UnsupportedVerbError(
            f"unknown verb {verb!r} (this server speaks "
            f"{PROTOCOL} v{VERSION})"
        )

    async def _decide_ref(self, request: Request, *, offload: bool) -> dict:
        """A decide against a named stored instance: routed by the ref's
        digest (not the class digest) to the shard holding the instance
        and its incremental states; the micro-batcher is bypassed — the
        store's per-``(plan, ref)`` state is the amortization here."""
        ref = request.instance_ref
        if offload:
            problem = await self._run_on_pool(self._require_problem, request)
        else:
            problem = self._require_problem(request)
        shard = self._sharded.shard_for_ref(ref)
        if self._store is None:  # fleet front: the owning worker decides
            result = await self._run_on_pool(
                self._sharded.decide_ref, shard, problem, ref,
                request.trace_id,
            )
            result["shard"] = shard  # the worker index, not its local 0
            return result
        session = self._sharded.session(shard)
        store = self._store

        def _run():
            # context vars do not cross executor threads; re-enter so the
            # store's delta_apply/incremental_solve spans land on the trace
            with trace_context(request.trace_id):
                return store.decide(session, problem, ref)

        decision, meta = await self._run_on_pool(_run)
        result = {
            "decision": decision.to_dict(),
            "shard": shard,
            "instance": meta,
        }
        if request.trace_id is not None:
            result["trace_id"] = request.trace_id
        return result

    async def _instance_verb(self, request: Request) -> dict:
        """The registry verbs.  All run on the thread pool: ``put``/``get``
        move whole instance documents and every verb takes the store lock,
        neither of which belongs on the event loop."""
        verb = request.verb
        ref = request.instance_ref
        if verb != "instance_list" and not ref:
            raise ServeProtocolError(f"{verb!r} needs an 'instance_ref'")
        if self._store is None:  # fleet front: forward to the owning worker
            return await self._run_on_pool(
                self._sharded.instance_request, request
            )
        store = self._store
        shard = self._sharded.shard_for_ref(ref) if ref else None
        if verb == "instance_put":
            if request.instance is None:
                raise ServeProtocolError("'instance_put' needs an 'instance'")

            def _put():
                db = db_io.from_dict(request.instance)
                info = store.put(ref, db, version=request.version)
                return {"instance": info.to_dict(), "shard": shard}

            return await self._run_on_pool(_put)
        if verb == "instance_patch":
            if request.delta is None:
                raise ServeProtocolError("'instance_patch' needs a 'delta'")

            def _patch():
                delta = Delta.from_dict(request.delta)
                info, applied = store.patch(
                    ref, delta, expect_version=request.expect_version
                )
                return {
                    "instance": info.to_dict(),
                    "applied": {
                        "adds": len(applied.adds),
                        "removes": len(applied.removes),
                    },
                    "shard": shard,
                }

            return await self._run_on_pool(_patch)
        if verb == "instance_drop":

            def _drop():
                return {"ref": ref, "dropped": store.drop(ref),
                        "shard": shard}

            return await self._run_on_pool(_drop)
        if verb == "instance_get":

            def _get():
                db, version = store.get(ref)
                return {
                    "ref": ref,
                    "version": version,
                    "instance": db_io.to_dict(db),
                    "shard": shard,
                }

            return await self._run_on_pool(_get)

        def _list():  # instance_list
            return {
                "instances": [info.to_dict() for info in store.list()],
                "stats": store.stats(),
            }

        return await self._run_on_pool(_list)

    async def _replica_verb(self, request: Request) -> dict:
        """The replica maintenance verbs (see ``protocol.py``): cluster
        controllers drive them against workers, whose replica side-store
        answers here.  ``replica_inventory`` additionally works on a
        store-less front (controller) by fanning out to every worker."""
        verb = request.verb
        ref = request.instance_ref
        if verb != "replica_inventory" and not ref:
            raise ServeProtocolError(f"{verb!r} needs an 'instance_ref'")
        if self._replicas is None:
            if verb == "replica_inventory":
                collect = getattr(self._sharded, "replica_inventory", None)
                if collect is not None:
                    return await self._run_on_pool(collect)
            raise UnsupportedVerbError(
                f"{verb!r} is answered by workers holding a store, not by "
                "this front"
            )
        replicas = self._replicas
        store = self._store
        if verb == "replicate":

            def _replicate():
                if request.instance is not None:
                    if request.version is None:
                        raise ServeProtocolError(
                            "'replicate' snapshots need a 'version'"
                        )
                    db = db_io.from_dict(request.instance)
                    info = replicas.put(ref, db, version=request.version)
                    return {"ref": ref, "replica": True,
                            "version": info.version}
                if request.delta is not None:
                    if request.version is None:
                        raise ServeProtocolError(
                            "'replicate' deltas need a 'version'"
                        )
                    delta = Delta.from_dict(request.delta)
                    info = replicas.apply_at(ref, delta, request.version)
                    return {"ref": ref, "replica": True,
                            "version": info.version}
                return {"ref": ref, "replica": False,
                        "dropped": replicas.drop(ref)}

            return await self._run_on_pool(_replicate)
        if verb == "replica_get":

            def _get():
                db, version = replicas.get(ref)
                return {
                    "ref": ref,
                    "version": version,
                    "instance": db_io.to_dict(db),
                }

            return await self._run_on_pool(_get)
        if verb == "promote":

            def _promote():
                def held_version():
                    try:
                        return store.get(ref)[1]
                    except UnknownInstanceError:
                        return None

                try:
                    db, version = replicas.get(ref)
                except UnknownInstanceError:
                    # idempotent: nothing to promote (already promoted, or
                    # never replicated here)
                    return {"ref": ref, "promoted": False,
                            "version": held_version()}
                held = held_version()
                promoted = held is None or held < version
                if promoted:
                    store.put(ref, db, version=version)
                replicas.drop(ref)
                return {"ref": ref, "promoted": promoted,
                        "version": version if promoted else held}

            return await self._run_on_pool(_promote)

        def _inventory():  # replica_inventory
            return {
                "replicas": [info.to_dict() for info in replicas.list()],
                "stats": replicas.stats(),
            }

        return await self._run_on_pool(_inventory)

    async def _stats(self) -> dict:
        shard_stats = await self._run_on_pool(self._sharded.stats)
        phases = await self._run_on_pool(self._merged_phases)
        server_block = {
            **self.metrics.to_dict(),
            "shards": self._sharded.n_shards,
            "processes": self.config.processes,
            "max_batch": self.config.max_batch,
            "linger_ms": self.config.linger_ms,
            "fo_backend": self.config.fo_backend,
            # the admission gauges + budgets (0 budget = unbounded)
            "inflight": self._inflight,
            "queue_depth": self._batcher.queue_depth,
            "max_inflight": self.config.max_inflight,
            "max_connection_inflight": self.config.max_connection_inflight,
        }
        if self._store is not None:  # fleet workers report their own slices
            server_block["store"] = self._store.stats()
        if self._replicas is not None:
            server_block["replicas"] = self._replicas.stats()
        if self._autoscaler is not None:
            server_block["autoscale"] = self._autoscaler.status()
        return {
            "server": server_block,
            "shards": [entry.to_dict() for entry in shard_stats],
            "phases": {
                name: snapshot.to_dict() for name, snapshot in phases.items()
            },
        }

    def _merged_phases(self) -> dict:
        """Per-phase latency snapshots: this process's recorder merged
        with every fleet worker's (workers hold the ``solve`` phases)."""
        merged = {
            name: [snapshot]
            for name, snapshot in recorder().phase_snapshots().items()
        }
        collect = getattr(self._sharded, "worker_phases", None)
        if collect is not None:
            for name, snapshot in collect().items():
                merged.setdefault(name, []).append(snapshot)
        return {
            name: merge_snapshots(snapshots)
            for name, snapshots in sorted(merged.items())
        }

    async def _prom_metrics(self) -> dict:
        """The ``metrics`` verb: one Prometheus text page for the fleet.

        The serving layer's own counters plus every shard's engine
        counters labelled ``shard="i"``, grouped per metric family
        (``# HELP``/``# TYPE`` appear exactly once each, as the text
        format requires) — the scrape side of the stats verb.
        """
        from ..engine.engine import prom_exposition
        from ..engine.metrics import LATENCY_BUCKET_BOUNDS

        shard_stats = await self._run_on_pool(self._sharded.stats)
        phases = await self._run_on_pool(self._merged_phases)
        counters = self.metrics.to_dict()
        lines = []
        for name, help_text in (
            ("requests", "Requests received."),
            ("errors", "Requests answered with an error envelope."),
            ("micro_batches", "Engine batches flushed by the batcher."),
            ("batched_requests",
             "Requests that shared their micro-batch with others."),
            ("shed",
             "Requests shed at admission (overloaded envelopes)."),
        ):
            lines.append(f"# HELP repro_server_{name}_total {help_text}")
            lines.append(f"# TYPE repro_server_{name}_total counter")
            lines.append(f"repro_server_{name}_total {counters[name]}")
        for name, help_text, value in (
            ("inflight",
             "Admitted engine requests currently in flight.",
             self._inflight),
            ("queue_depth",
             "Requests waiting in open micro-batch groups.",
             self._batcher.queue_depth),
            ("workers",
             "Shards (or fleet workers) currently serving.",
             self._sharded.n_shards),
        ):
            lines.append(f"# HELP repro_server_{name} {help_text}")
            lines.append(f"# TYPE repro_server_{name} gauge")
            lines.append(f"repro_server_{name} {value}")
        if phases:
            lines.append(
                "# HELP repro_phase_latency_seconds Request phase latency "
                "(queue_wait/batch_linger/canonicalize/transport/"
                "delta_apply/incremental_solve/solve/respond), fleet-wide."
            )
            lines.append("# TYPE repro_phase_latency_seconds histogram")
            for phase, snapshot in phases.items():
                cumulative = 0
                for bound, count in zip(
                    LATENCY_BUCKET_BOUNDS, snapshot.histogram
                ):
                    cumulative += count
                    lines.append(
                        "repro_phase_latency_seconds_bucket"
                        f'{{phase="{phase}",le="{bound!r}"}} {cumulative}'
                    )
                cumulative += snapshot.histogram[-1]
                lines.append(
                    "repro_phase_latency_seconds_bucket"
                    f'{{phase="{phase}",le="+Inf"}} {cumulative}'
                )
                lines.append(
                    "repro_phase_latency_seconds_sum"
                    f'{{phase="{phase}"}} {snapshot.total_seconds}'
                )
                lines.append(
                    "repro_phase_latency_seconds_count"
                    f'{{phase="{phase}"}} {snapshot.evaluations}'
                )
        exposition = "\n".join(lines) + "\n" + prom_exposition(
            ({"shard": str(entry.shard)}, entry.stats)
            for entry in shard_stats
        )
        return {"exposition": exposition}

    def _decode_decide(self, request: Request) -> tuple[Problem, DatabaseInstance]:
        """Decode + canonicalize a decide payload, transporting the
        instance into the problem's canonical spelling.

        The whole step is the ``canonicalize`` span: payload decode,
        canonical-form computation, and the instance transport into the
        canonical spelling.
        """
        decode_start = time.perf_counter()
        problem = self._require_problem(request)
        db = db_io.from_dict(request.instance)
        transported = problem.canonical.transport_instance(db)
        recorder().record(
            request.trace_id, "canonicalize",
            time.perf_counter() - decode_start,
            labels={"class": problem.fingerprint.digest},
        )
        return problem, transported

    async def _run_on_pool(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, lambda: fn(*args)
        )

    @staticmethod
    def _require_problem(request: Request) -> Problem:
        if request.problem is None:
            raise ServeProtocolError(
                f"{request.verb!r} needs a 'problem' payload"
            )
        return Problem.from_dict(request.problem)


async def _serve_async(
    config: ServerConfig, *, ready=None, server_factory=None
) -> None:
    server = (server_factory or CertaintyServer)(config)
    await server.start()
    if ready is not None:
        ready(server)
    await server.serve_until_stopped()


def run_server(
    config: ServerConfig | None = None, *, server_factory=None
) -> None:
    """Run a server in the foreground until interrupted or told to stop
    (the ``repro serve`` entry point).  *server_factory* swaps the server
    class (the cluster controller reuses this whole runner)."""
    config = config or ServerConfig()
    setup_logging(config.log_level, config.log_format)

    def announce(server: CertaintyServer) -> None:
        host, port = server.address
        if server.config.processes > 0:
            width = f"{server.config.processes} worker processes"
        else:
            width = f"{server.config.shards} shards"
        print(
            f"repro serve: listening on {host}:{port} "
            f"({width}, fo_backend="
            f"{server.config.fo_backend}, max_batch="
            f"{server.config.max_batch}, linger={server.config.linger_ms}ms)",
            flush=True,
        )
        log_event(
            _logger, logging.INFO, "serve.start",
            host=host, port=port,
            processes=server.config.processes or None,
            shards=(
                None if server.config.processes else server.config.shards
            ),
            fo_backend=server.config.fo_backend,
        )

    try:
        asyncio.run(
            _serve_async(config, ready=announce, server_factory=server_factory)
        )
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """A :class:`CertaintyServer` on a daemon thread, for in-process use.

    The tests', examples' and benchmarks' harness::

        with BackgroundServer(ServerConfig(shards=2)) as server:
            host, port = server.address
            ...  # connect clients

    Entering blocks until the socket is bound; leaving requests shutdown
    and joins the thread.
    """

    def __init__(
        self, config: ServerConfig | None = None, *, server_factory=None
    ):
        self.config = config or ServerConfig()
        self._server_factory = server_factory
        self._ready = threading.Event()
        self._server: CertaintyServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-bg", daemon=True
        )
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        def remember(server: CertaintyServer) -> None:
            self._server = server
            self._loop = asyncio.get_running_loop()
            self._ready.set()

        try:
            asyncio.run(_serve_async(
                self.config, ready=remember,
                server_factory=self._server_factory,
            ))
        except BaseException as error:  # surface bind failures to the waiter
            self._startup_error = error
            self._ready.set()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError(
                f"background server failed to start: {self._startup_error}"
            ) from self._startup_error
        if self._server is None:
            raise RuntimeError("background server did not start in time")
        return self

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "server not started"
        return self._server.address

    @property
    def server(self) -> CertaintyServer:
        assert self._server is not None, "server not started"
        return self._server

    def stop(self) -> None:
        if self._server is not None and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
