"""Common solver interfaces: the prepared-solver lifecycle.

Since the `repro.api` redesign the solver contract is two-phase, following
the prepared-statement pattern of database client libraries:

1. **prepare** — constructing a solver pays every per-problem cost
   (classification checks, rewriting construction, SQL compilation,
   connection warm-up).  :func:`repro.api.prepare` routes a
   :class:`~repro.api.Problem` through the backend registry and returns the
   prepared solver; constructing a solver class directly is the manual
   form of the same phase.
2. **decide** — ``PreparedSolver.decide(db)`` answers one instance and may
   be called arbitrarily often; ``close()`` releases held resources (warm
   connections).  Prepared solvers are context managers.

:class:`CertaintySolver` remains the minimal decide-only protocol for code
that never manages lifecycles; every shipped solver also satisfies
:class:`PreparedSolver`.  The historical ``Problem`` convenience bundle now
lives in :mod:`repro.api` (re-exported from :mod:`repro.solvers` for
compatibility).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..db.instance import DatabaseInstance


@runtime_checkable
class CertaintySolver(Protocol):
    """A decision procedure for one fixed problem ``CERTAINTY(q, FK)``."""

    name: str

    def decide(self, db: DatabaseInstance) -> bool:
        """The certain answer on *db*."""
        ...


@runtime_checkable
class PreparedSolver(Protocol):
    """A prepared decision procedure: repeated :meth:`decide`, explicit
    :meth:`close` when the holder (plan cache, session) drops it."""

    name: str

    def decide(self, db: DatabaseInstance) -> bool:
        """The certain answer on *db* (callable any number of times)."""
        ...

    def close(self) -> None:
        """Release per-plan resources; further decides may re-acquire them."""
        ...


class PreparedSolverMixin:
    """Default lifecycle for solvers without per-plan resources: a no-op
    ``close()`` and context-manager support."""

    def close(self) -> None:
        """Nothing to release by default."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def close_solver(solver: object) -> None:
    """Close *solver* if it exposes the prepared lifecycle (duck-typed, so
    pre-redesign third-party solvers keep working)."""
    close = getattr(solver, "close", None)
    if callable(close):
        close()
