"""Common solver interface.

Every solver decides ``CERTAINTY(q, FK)`` for a fixed ``(q, FK)`` on
arbitrary instances; the benchmark harness and the examples drive them
interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.instance import DatabaseInstance


@runtime_checkable
class CertaintySolver(Protocol):
    """A decision procedure for one fixed problem ``CERTAINTY(q, FK)``."""

    name: str

    def decide(self, db: DatabaseInstance) -> bool:
        """The certain answer on *db*."""
        ...


@dataclass
class Problem:
    """A ``(q, FK)`` pair — convenience bundle for the harness."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    label: str = ""

    def __post_init__(self) -> None:
        self.fks.require_about(self.query)
        if not self.label:
            self.label = repr(self.query)
