"""Solvers: rewriting-backed, procedural, exhaustive, and the Proposition
16/17 polynomial algorithms with their substrates."""

from .base import CertaintySolver, Problem
from .brute_force import OplusOracleSolver, SubsetRepairSolver
from .dual_horn import (
    certain_by_dual_horn,
    instance_to_dual_horn,
    proposition17_query,
)
from .reachability import (
    ReachabilityGraph,
    build_reachability_graph,
    certain_by_reachability,
    proposition16_query,
)
from .rewriting_solver import ProceduralSolver, RewritingSolver
from .sat import (
    Clause,
    DualHornFormula,
    NotDualHornError,
    SatResult,
    brute_force_satisfiable,
    solve_dual_horn,
)

__all__ = [
    "CertaintySolver", "Clause", "DualHornFormula", "NotDualHornError",
    "OplusOracleSolver", "Problem", "ProceduralSolver", "ReachabilityGraph",
    "RewritingSolver", "SatResult", "SubsetRepairSolver",
    "brute_force_satisfiable", "build_reachability_graph",
    "certain_by_dual_horn", "certain_by_reachability",
    "instance_to_dual_horn", "proposition16_query", "proposition17_query",
    "solve_dual_horn",
]
