"""Solvers: rewriting-backed, procedural, exhaustive, and the Proposition
16/17 polynomial algorithms with their substrates.

The class-shaped solvers (``*Solver``) all implement the
:class:`~repro.solvers.base.PreparedSolver` lifecycle (repeated ``decide``
plus ``close``) for one fixed problem; :mod:`repro.engine` routes among
them automatically via the backend registry.  ``EngineSolver`` (the engine
behind the same protocol) and ``Problem`` (now the canonical
:class:`repro.api.Problem`) are re-exported lazily to avoid circular
imports.
"""

from .base import (
    CertaintySolver,
    PreparedSolver,
    PreparedSolverMixin,
    close_solver,
)
from .brute_force import OplusOracleSolver, SubsetRepairSolver
from .dual_horn import (
    DualHornSolver,
    certain_by_dual_horn,
    instance_to_dual_horn,
    proposition17_query,
)
from .reachability import (
    ReachabilityGraph,
    ReachabilitySolver,
    build_reachability_graph,
    certain_by_reachability,
    proposition16_query,
)
from .rewriting_solver import (
    ProceduralSolver,
    RewritingSolver,
    SqlRewritingSolver,
)
from .sat import (
    Clause,
    DualHornFormula,
    NotDualHornError,
    SatResult,
    brute_force_satisfiable,
    solve_dual_horn,
)

__all__ = [
    "CertaintySolver", "Clause", "DualHornFormula", "DualHornSolver",
    "EngineSolver", "NotDualHornError", "OplusOracleSolver", "PreparedSolver",
    "PreparedSolverMixin", "Problem", "ProceduralSolver", "ReachabilityGraph",
    "ReachabilitySolver", "RewritingSolver", "SatResult", "SqlRewritingSolver",
    "SubsetRepairSolver", "brute_force_satisfiable",
    "build_reachability_graph", "certain_by_dual_horn",
    "certain_by_reachability", "close_solver", "instance_to_dual_horn",
    "proposition16_query", "proposition17_query", "solve_dual_horn",
]


def __getattr__(name: str):
    # Lazy: repro.engine imports this package, so importing EngineSolver
    # eagerly here would be circular; Problem moved to repro.api and is
    # re-exported here for pre-redesign imports.
    if name == "EngineSolver":
        from ..engine import EngineSolver

        return EngineSolver
    if name == "Problem":
        from ..api.problem import Problem

        return Problem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
