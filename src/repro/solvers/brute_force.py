"""Baseline solvers: exhaustive repair enumeration.

These are the comparators of benchmark E12 — exponential in the number of
blocks, exact, and independent of the rewriting machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.instance import DatabaseInstance
from ..repairs.oplus import OracleConfig, certain_answer
from .base import PreparedSolverMixin
from ..repairs.subset import certainty_primary_keys


@dataclass
class OplusOracleSolver(PreparedSolverMixin):
    """Exact ⊕-repair search (primary *and* foreign keys)."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    config: OracleConfig = field(default_factory=OracleConfig)
    name: str = "oplus-oracle"

    def decide(self, db: DatabaseInstance) -> bool:
        """Exhaustive canonical ⊕-repair search."""
        return certain_answer(self.query, self.fks, db, self.config).certain


@dataclass
class SubsetRepairSolver(PreparedSolverMixin):
    """Exhaustive subset-repair enumeration (primary keys only, ``FK = ∅``)."""

    query: ConjunctiveQuery
    name: str = "subset-repairs"

    def decide(self, db: DatabaseInstance) -> bool:
        """Enumerate all subset repairs and test the query on each."""
        return certainty_primary_keys(self.query, db)
