"""The P algorithm of Proposition 17.

For ``q = {N(x, c, y), O(y)}`` with ``FK = {N[3] → O}``, the complement of
``CERTAINTY(q, FK)`` reduces to DUAL HORN SAT (Appendix D.3):

* every fact ``O(p)`` contributes the positive unit clause ``p``;
* every ``N``-block with "satisfying" facts ``N(i, c, p1..pn)`` and
  "falsifying" facts ``N(i, b1, q1), …, N(i, bm, qm)`` (``bj ≠ c``)
  contributes, for each ``j ∈ [n]``, the clause ``¬pj ∨ q1 ∨ … ∨ qm``.

``db`` is a **no**-instance iff the formula is satisfiable: a satisfying
assignment selects, per obligated block, a falsifying fact whose inserted
``O``-value propagates the obligation — exactly the block-interference
chain of Section 4.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..core.foreign_keys import ForeignKeySet, fk_set
from ..core.query import ConjunctiveQuery, parse_query
from ..db.instance import DatabaseInstance
from .base import PreparedSolverMixin
from .sat import Clause, DualHornFormula, solve_dual_horn


def proposition17_query(
    constant: object = "c",
) -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """The fixed problem of Proposition 17: ``{N(x,c,y), O(y)}, N[3]→O``."""
    query = parse_query(f"N(x | '{constant}', y)", "O(y |)")
    return query, fk_set(query, "N[3]->O")


def instance_to_dual_horn(
    db: DatabaseInstance,
    constant: object = "c",
    n_relation: str = "N",
    o_relation: str = "O",
) -> DualHornFormula:
    """The Appendix D.3 reduction from an instance to a dual-Horn formula.

    Variables are the values occurring at ``O``'s key position or ``N``'s
    third position.  *n_relation*/*o_relation* carry the recognizer's
    binding of which relations play ``N`` and ``O`` (the problem is
    recognised up to relation renaming).
    """
    formula = DualHornFormula()
    for fact in sorted(db.relation_facts(o_relation), key=repr):
        formula.add(Clause((fact.value_at(1),)))
    blocks: dict[tuple[object, ...], list] = defaultdict(list)
    for fact in db.relation_facts(n_relation):
        blocks[fact.key].append(fact)
    for key in sorted(blocks, key=repr):
        facts = blocks[key]
        satisfying = sorted(
            (f.value_at(3) for f in facts if f.value_at(2) == constant),
            key=repr,
        )
        falsifying = tuple(
            sorted(
                (f.value_at(3) for f in facts if f.value_at(2) != constant),
                key=repr,
            )
        )
        for p in satisfying:
            formula.add(Clause(falsifying, negative=p))
    return formula


def certain_by_dual_horn(
    db: DatabaseInstance,
    constant: object = "c",
    n_relation: str = "N",
    o_relation: str = "O",
) -> bool:
    """Decide ``CERTAINTY({N(x,c,y), O(y)}, {N[3]→O})`` in P.

    The instance is a *no*-instance iff the dual-Horn encoding is
    satisfiable, so the certain answer is the negation.
    """
    formula = instance_to_dual_horn(db, constant, n_relation, o_relation)
    return not solve_dual_horn(formula).satisfiable


@dataclass
class DualHornSolver(PreparedSolverMixin):
    """The Proposition 17 algorithm behind the common solver interface.

    *constant* is the query's distinguished constant (the ``c`` of
    ``N(x, c, y)``); the reduction treats every other second-position value
    as falsifying.  ``n_relation``/``o_relation`` carry the recognizer's
    relation binding (the fixed names by default).
    """

    constant: object = "c"
    name: str = "p-dual-horn"
    n_relation: str = "N"
    o_relation: str = "O"

    def decide(self, db: DatabaseInstance) -> bool:
        """Polynomial dual-Horn SAT decision (Proposition 17)."""
        return certain_by_dual_horn(
            db, self.constant, self.n_relation, self.o_relation
        )
