"""The NL algorithm of Proposition 16.

For ``q = {N(x, x), O(x)}`` with ``FK = {N[2] → O}``, the complement of
``CERTAINTY(q, FK)`` reduces to directed graph reachability:

* vertices: ``V = {c | N(c, c) ∈ db} ∪ {⊥}``;
* for ``c ∈ V`` with block ``N(c, ∗) = {N(c,c), N(c,d1), …, N(c,dn)}``:
  edges ``(c, di)`` if every ``di ∈ V``, else the single escape edge
  ``(c, ⊥)``;
* mark ``c`` when ``O(c) ∈ db`` and ``c ∈ V``.

``db`` is a **no**-instance iff ``⊥`` is reachable from every marked
vertex.  The graph substrate is a plain BFS; the solver is linear in
``|db|`` up to indexing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.foreign_keys import ForeignKeySet, fk_set
from ..core.query import ConjunctiveQuery, parse_query
from ..db.instance import DatabaseInstance

_BOTTOM = ("⊥",)


def proposition16_query() -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """The fixed problem of Proposition 16: ``{N(x,x), O(x)}, N[2]→O``."""
    query = parse_query("N(x | x)", "O(x |)")
    return query, fk_set(query, "N[2]->O")


@dataclass
class ReachabilityGraph:
    """The digraph the Proposition 16 reduction produces."""

    vertices: set[object]
    edges: dict[object, set[object]]
    marked: set[object]

    def reaches(self, source: object, target: object) -> bool:
        """BFS reachability within the reduction graph."""
        if source == target:
            return True
        frontier = deque([source])
        seen = {source}
        while frontier:
            current = frontier.popleft()
            for succ in self.edges.get(current, ()):
                if succ == target:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def all_marked_reach_bottom(self) -> bool:
        """Reverse-BFS from ⊥ and compare with the marked set."""
        reverse: dict[object, set[object]] = {}
        for src, targets in self.edges.items():
            for dst in targets:
                reverse.setdefault(dst, set()).add(src)
        reached = {_BOTTOM}
        frontier = deque([_BOTTOM])
        while frontier:
            current = frontier.popleft()
            for pred in reverse.get(current, ()):
                if pred not in reached:
                    reached.add(pred)
                    frontier.append(pred)
        return self.marked <= reached


def build_reachability_graph(db: DatabaseInstance) -> ReachabilityGraph:
    """The Proposition 16 reduction from an instance to a digraph."""
    diagonal = {
        fact.value_at(1)
        for fact in db.relation_facts("N")
        if fact.arity == 2 and fact.value_at(1) == fact.value_at(2)
    }
    vertices: set[object] = set(diagonal) | {_BOTTOM}
    edges: dict[object, set[object]] = {}
    for c in diagonal:
        others = {
            fact.value_at(2)
            for fact in db.block_of("N", (c,))
            if fact.value_at(2) != c
        }
        if others <= diagonal:
            edges[c] = set(others)
        else:
            edges[c] = {_BOTTOM}
    marked = {
        fact.value_at(1)
        for fact in db.relation_facts("O")
        if fact.value_at(1) in diagonal
    }
    return ReachabilityGraph(vertices, edges, marked)


def certain_by_reachability(db: DatabaseInstance) -> bool:
    """Decide ``CERTAINTY({N(x,x), O(x)}, {N[2]→O})`` in NL.

    The instance is a *no*-instance iff every marked vertex reaches ⊥, so
    the certain answer is the negation.
    """
    graph = build_reachability_graph(db)
    return not graph.all_marked_reach_bottom()
