"""The NL algorithm of Proposition 16.

For ``q = {N(x, x), O(x)}`` with ``FK = {N[2] → O}``, the complement of
``CERTAINTY(q, FK)`` reduces to a directed-graph walk problem:

* vertices: ``V = {c | N(c, c) ∈ db} ∪ {⊥}``;
* for ``c ∈ V`` with block ``N(c, ∗) = {N(c,c), N(c,d1), …, N(c,dn)}``:
  edges ``(c, di)`` if every ``di ∈ V``, else the single escape edge
  ``(c, ⊥)``;
* mark ``c`` when ``O(c) ∈ db`` and ``c ∈ V``.

An ``O(c)`` fact obliges the block of a vertex ``c`` to avoid its diagonal
fact; choosing ``N(c, d)`` with ``d ∈ V`` inserts ``O(d)`` and propagates
the obligation to ``d``, while ``d ∉ V`` discharges it (the escape edge).
A vertex whose block offers *only* the diagonal fact is **stuck**: its
obligation cannot be discharged.  ``db`` is a **no**-instance iff no marked
vertex is *doomed* — forced, along every walk, into a stuck vertex.  A
marked vertex survives either by reaching ``⊥`` or by riding an obligation
cycle forever (a finite repair sustains a cyclic chain of ``O``-insertions,
e.g. ``{N(1,2), N(2,1), O(1), O(2)}``).  Walks that reach ``⊥`` or a cycle
are guessable in NL; the solver below computes the forced-capture attractor
with reverse BFS and successor counters, linear in ``|db|`` up to indexing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.foreign_keys import ForeignKeySet, fk_set
from ..core.query import ConjunctiveQuery, parse_query
from ..db.instance import DatabaseInstance
from .base import PreparedSolverMixin

_BOTTOM = ("⊥",)


def proposition16_query() -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """The fixed problem of Proposition 16: ``{N(x,x), O(x)}, N[2]→O``."""
    query = parse_query("N(x | x)", "O(x |)")
    return query, fk_set(query, "N[2]->O")


@dataclass
class ReachabilityGraph:
    """The digraph the Proposition 16 reduction produces."""

    vertices: set[object]
    edges: dict[object, set[object]]
    marked: set[object]

    def reaches(self, source: object, target: object) -> bool:
        """BFS reachability within the reduction graph."""
        if source == target:
            return True
        frontier = deque([source])
        seen = {source}
        while frontier:
            current = frontier.popleft()
            for succ in self.edges.get(current, ()):
                if succ == target:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def doomed_vertices(self) -> set[object]:
        """Vertices forced into a stuck vertex along every walk.

        A non-⊥ vertex with no successors is stuck (its block offers only
        the diagonal fact); a vertex all of whose successors are doomed is
        doomed; ⊥ is never doomed.  Computed as the forced-capture
        attractor: reverse BFS with per-vertex counters of not-yet-doomed
        successors.  On acyclic graphs this coincides with "cannot reach
        ⊥"; cycles are survivable and stay out of the attractor.
        """
        reverse: dict[object, set[object]] = {}
        remaining: dict[object, int] = {}
        for vertex in self.vertices:
            if vertex == _BOTTOM:
                continue
            successors = self.edges.get(vertex, set())
            remaining[vertex] = len(successors)
            for dst in successors:
                reverse.setdefault(dst, set()).add(vertex)
        doomed = {v for v, count in remaining.items() if count == 0}
        frontier = deque(doomed)
        while frontier:
            current = frontier.popleft()
            for pred in reverse.get(current, ()):
                remaining[pred] -= 1
                if remaining[pred] == 0 and pred not in doomed:
                    doomed.add(pred)
                    frontier.append(pred)
        return doomed

    def some_marked_doomed(self) -> bool:
        """Is some marked vertex forced to its diagonal fact (a yes-instance)?"""
        doomed = self.doomed_vertices()
        return any(vertex in doomed for vertex in self.marked)


def build_reachability_graph(
    db: DatabaseInstance,
    n_relation: str = "N",
    o_relation: str = "O",
) -> ReachabilityGraph:
    """The Proposition 16 reduction from an instance to a digraph.

    *n_relation*/*o_relation* name which relations play ``N`` and ``O`` —
    the problem is recognised up to relation renaming, so the reduction
    reads the binding off the recognizer rather than fixed names.
    """
    diagonal = {
        fact.value_at(1)
        for fact in db.relation_facts(n_relation)
        if fact.arity == 2 and fact.value_at(1) == fact.value_at(2)
    }
    vertices: set[object] = set(diagonal) | {_BOTTOM}
    edges: dict[object, set[object]] = {}
    for c in diagonal:
        others = {
            fact.value_at(2)
            for fact in db.block_of(n_relation, (c,))
            if fact.value_at(2) != c
        }
        if others <= diagonal:
            edges[c] = set(others)
        else:
            edges[c] = {_BOTTOM}
    marked = {
        fact.value_at(1)
        for fact in db.relation_facts(o_relation)
        if fact.value_at(1) in diagonal
    }
    return ReachabilityGraph(vertices, edges, marked)


def certain_by_reachability(
    db: DatabaseInstance,
    n_relation: str = "N",
    o_relation: str = "O",
) -> bool:
    """Decide ``CERTAINTY({N(x,x), O(x)}, {N[2]→O})`` in NL.

    The instance is a *yes*-instance iff some marked vertex is doomed —
    every obligation walk from it is forced into a stuck vertex, so every
    ⊕-repair keeps a diagonal fact with its ``O``-fact (see the module
    docstring for why escapes *and* obligation cycles falsify).
    """
    graph = build_reachability_graph(db, n_relation, o_relation)
    return graph.some_marked_doomed()


@dataclass
class ReachabilitySolver(PreparedSolverMixin):
    """The Proposition 16 algorithm behind the common solver interface.

    ``n_relation``/``o_relation`` carry the recognizer's binding of which
    relations play ``N`` and ``O`` (the fixed names by default).
    """

    name: str = "nl-reachability"
    n_relation: str = "N"
    o_relation: str = "O"

    def decide(self, db: DatabaseInstance) -> bool:
        """Linear-time reachability decision (Proposition 16)."""
        return certain_by_reachability(db, self.n_relation, self.o_relation)
