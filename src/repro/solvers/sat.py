"""A dual-Horn SAT substrate.

Proposition 17 places ``CERTAINTY(q, FK)`` for ``q = {N(x,c,y), O(y)}``,
``FK = {N[3] → O}`` in P by mutual reduction with DUAL HORN SAT — CNF
satisfiability where every clause has **at most one negative literal**
(the dual of Horn; P-complete by Schaefer).  This module implements the
substrate: formula representation, dual-Horn validation, and a linear-time
unit-propagation solver computing the *maximal* satisfying assignment.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..exceptions import ReproError


class NotDualHornError(ReproError):
    """A clause with two or more negative literals was supplied."""


@dataclass(frozen=True)
class Clause:
    """``¬negative ∨ positives[0] ∨ positives[1] ∨ …`` (negative optional)."""

    positives: tuple[Hashable, ...]
    negative: Hashable | None = None

    def __post_init__(self) -> None:
        if len(set(self.positives)) != len(self.positives):
            object.__setattr__(
                self, "positives", tuple(dict.fromkeys(self.positives))
            )

    @property
    def variables(self) -> set[Hashable]:
        """All variables mentioned by the clause."""
        out = set(self.positives)
        if self.negative is not None:
            out.add(self.negative)
        return out

    def __repr__(self) -> str:
        parts = [f"¬{self.negative}"] if self.negative is not None else []
        parts.extend(str(p) for p in self.positives)
        return " ∨ ".join(parts) if parts else "⊥"


@dataclass
class DualHornFormula:
    """A conjunction of dual-Horn clauses."""

    clauses: list[Clause] = field(default_factory=list)

    @classmethod
    def from_literal_lists(
        cls, clause_literals: Iterable[Iterable[tuple[Hashable, bool]]]
    ) -> "DualHornFormula":
        """Build from ``(variable, is_positive)`` literal lists, validating
        the at-most-one-negative-literal restriction."""
        formula = cls()
        for literals in clause_literals:
            positives: list[Hashable] = []
            negative: Hashable | None = None
            for variable, is_positive in literals:
                if is_positive:
                    positives.append(variable)
                elif negative is None:
                    negative = variable
                else:
                    raise NotDualHornError(
                        "clause has two negative literals: "
                        f"¬{negative}, ¬{variable}"
                    )
            formula.add(Clause(tuple(positives), negative))
        return formula

    def add(self, clause: Clause) -> None:
        """Append one clause."""
        self.clauses.append(clause)

    @property
    def variables(self) -> set[Hashable]:
        """All variables mentioned by the formula."""
        out: set[Hashable] = set()
        for clause in self.clauses:
            out |= clause.variables
        return out

    def evaluate(self, assignment: dict[Hashable, bool]) -> bool:
        """Truth of the formula under a total assignment."""
        for clause in self.clauses:
            satisfied = any(assignment.get(p, False) for p in clause.positives)
            if clause.negative is not None:
                satisfied = satisfied or not assignment.get(
                    clause.negative, False
                )
            if not satisfied:
                return False
        return True

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return " ∧ ".join(f"({c!r})" for c in self.clauses) or "⊤"


@dataclass(frozen=True)
class SatResult:
    """Solver outcome: satisfiability plus the maximal model if satisfiable."""

    satisfiable: bool
    assignment: dict[Hashable, bool] | None = None


def solve_dual_horn(formula: DualHornFormula) -> SatResult:
    """Decide satisfiability by dual unit propagation.

    Start from the all-true assignment (which satisfies every clause with a
    positive literal) and propagate *forced-false* variables: a clause
    ``¬q ∨ p1 ∨ … ∨ pn`` whose positives are all false forces ``q`` false;
    a purely positive clause with all positives false is a contradiction.
    The result, when satisfiable, is the unique maximal model — the mirror
    image of Horn's minimal-model property.
    """
    false_set: set[Hashable] = set()
    # Index clauses by positive literal for efficient counter updates.
    watching: dict[Hashable, list[int]] = defaultdict(list)
    open_positives: list[int] = []
    for index, clause in enumerate(formula.clauses):
        open_positives.append(len(set(clause.positives)))
        for positive in set(clause.positives):
            watching[positive].append(index)

    queue: list[Hashable] = []

    def fire(index: int) -> bool:
        """A clause ran out of true positives; force or fail."""
        clause = formula.clauses[index]
        if clause.negative is None:
            return False
        if clause.negative not in false_set:
            false_set.add(clause.negative)
            queue.append(clause.negative)
        return True

    for index, clause in enumerate(formula.clauses):
        if open_positives[index] == 0 and not fire(index):
            return SatResult(False)

    while queue:
        variable = queue.pop()
        for index in watching[variable]:
            open_positives[index] -= 1
            if open_positives[index] == 0 and not fire(index):
                return SatResult(False)

    assignment = {v: v not in false_set for v in formula.variables}
    return SatResult(True, assignment)


def brute_force_satisfiable(formula: DualHornFormula) -> bool:
    """Exponential reference check used by the test suite (≤ ~20 vars)."""
    variables = sorted(formula.variables, key=repr)
    if len(variables) > 22:
        raise ReproError("brute-force SAT limited to 22 variables")
    for mask in range(1 << len(variables)):
        assignment = {
            v: bool(mask >> i & 1) for i, v in enumerate(variables)
        }
        if formula.evaluate(assignment):
            return True
    return False
