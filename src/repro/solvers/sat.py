"""SAT substrates: dual-Horn (Proposition 17) and general CNF (fallback).

Proposition 17 places ``CERTAINTY(q, FK)`` for ``q = {N(x,c,y), O(y)}``,
``FK = {N[3] → O}`` in P by mutual reduction with DUAL HORN SAT — CNF
satisfiability where every clause has **at most one negative literal**
(the dual of Horn; P-complete by Schaefer).  This module implements the
substrate: formula representation, dual-Horn validation, and a linear-time
unit-propagation solver computing the *maximal* satisfying assignment.

Beyond the polynomial island, the coNP-hard residue of the trichotomy
admits the classical *falsifying-repair* encoding: with ``FK = ∅`` a
subset repair picks exactly one fact per key-equal block, and the query is
certain iff **no** repair falsifies it — i.e. iff the CNF «exactly one
fact per block, and for every valuation image θ(q) ⊆ db at least one of
its facts is unchosen» is unsatisfiable.  :func:`solve_cnf` is the
general-CNF decision procedure (iterative DPLL with unit propagation) and
:class:`SatRepairSolver` the prepared solver the router can place between
the polynomial islands and the exhaustive enumerators.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..core.query import ConjunctiveQuery
from ..db.instance import DatabaseInstance
from ..db.matching import apply_valuation, valuations
from ..exceptions import ReproError
from .base import PreparedSolverMixin


class NotDualHornError(ReproError):
    """A clause with two or more negative literals was supplied."""


@dataclass(frozen=True)
class Clause:
    """``¬negative ∨ positives[0] ∨ positives[1] ∨ …`` (negative optional)."""

    positives: tuple[Hashable, ...]
    negative: Hashable | None = None

    def __post_init__(self) -> None:
        if len(set(self.positives)) != len(self.positives):
            object.__setattr__(
                self, "positives", tuple(dict.fromkeys(self.positives))
            )

    @property
    def variables(self) -> set[Hashable]:
        """All variables mentioned by the clause."""
        out = set(self.positives)
        if self.negative is not None:
            out.add(self.negative)
        return out

    def __repr__(self) -> str:
        parts = [f"¬{self.negative}"] if self.negative is not None else []
        parts.extend(str(p) for p in self.positives)
        return " ∨ ".join(parts) if parts else "⊥"


@dataclass
class DualHornFormula:
    """A conjunction of dual-Horn clauses."""

    clauses: list[Clause] = field(default_factory=list)

    @classmethod
    def from_literal_lists(
        cls, clause_literals: Iterable[Iterable[tuple[Hashable, bool]]]
    ) -> "DualHornFormula":
        """Build from ``(variable, is_positive)`` literal lists, validating
        the at-most-one-negative-literal restriction."""
        formula = cls()
        for literals in clause_literals:
            positives: list[Hashable] = []
            negative: Hashable | None = None
            for variable, is_positive in literals:
                if is_positive:
                    positives.append(variable)
                elif negative is None:
                    negative = variable
                else:
                    raise NotDualHornError(
                        "clause has two negative literals: "
                        f"¬{negative}, ¬{variable}"
                    )
            formula.add(Clause(tuple(positives), negative))
        return formula

    def add(self, clause: Clause) -> None:
        """Append one clause."""
        self.clauses.append(clause)

    @property
    def variables(self) -> set[Hashable]:
        """All variables mentioned by the formula."""
        out: set[Hashable] = set()
        for clause in self.clauses:
            out |= clause.variables
        return out

    def evaluate(self, assignment: dict[Hashable, bool]) -> bool:
        """Truth of the formula under a total assignment."""
        for clause in self.clauses:
            satisfied = any(assignment.get(p, False) for p in clause.positives)
            if clause.negative is not None:
                satisfied = satisfied or not assignment.get(
                    clause.negative, False
                )
            if not satisfied:
                return False
        return True

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return " ∧ ".join(f"({c!r})" for c in self.clauses) or "⊤"


@dataclass(frozen=True)
class SatResult:
    """Solver outcome: satisfiability plus the maximal model if satisfiable."""

    satisfiable: bool
    assignment: dict[Hashable, bool] | None = None


def solve_dual_horn(formula: DualHornFormula) -> SatResult:
    """Decide satisfiability by dual unit propagation.

    Start from the all-true assignment (which satisfies every clause with a
    positive literal) and propagate *forced-false* variables: a clause
    ``¬q ∨ p1 ∨ … ∨ pn`` whose positives are all false forces ``q`` false;
    a purely positive clause with all positives false is a contradiction.
    The result, when satisfiable, is the unique maximal model — the mirror
    image of Horn's minimal-model property.
    """
    false_set: set[Hashable] = set()
    # Index clauses by positive literal for efficient counter updates.
    watching: dict[Hashable, list[int]] = defaultdict(list)
    open_positives: list[int] = []
    for index, clause in enumerate(formula.clauses):
        open_positives.append(len(set(clause.positives)))
        for positive in set(clause.positives):
            watching[positive].append(index)

    queue: list[Hashable] = []

    def fire(index: int) -> bool:
        """A clause ran out of true positives; force or fail."""
        clause = formula.clauses[index]
        if clause.negative is None:
            return False
        if clause.negative not in false_set:
            false_set.add(clause.negative)
            queue.append(clause.negative)
        return True

    for index, clause in enumerate(formula.clauses):
        if open_positives[index] == 0 and not fire(index):
            return SatResult(False)

    while queue:
        variable = queue.pop()
        for index in watching[variable]:
            open_positives[index] -= 1
            if open_positives[index] == 0 and not fire(index):
                return SatResult(False)

    assignment = {v: v not in false_set for v in formula.variables}
    return SatResult(True, assignment)


def solve_cnf(clauses: Iterable[Iterable[int]]) -> bool:
    """General-CNF satisfiability by iterative DPLL with unit propagation.

    Clauses are DIMACS-style integer literal lists (``v`` positive,
    ``-v`` negated, variables numbered from 1).  An empty clause set is
    satisfiable; an empty clause is not.  The search is an explicit-stack
    backtracker, so deep formulas never hit the recursion limit.
    """
    normalized: list[tuple[int, ...]] = []
    for clause in clauses:
        literals = tuple(dict.fromkeys(clause))
        if any(lit == 0 for lit in literals):
            raise ValueError("literal 0 is not a valid DIMACS literal")
        if any(-lit in literals for lit in literals):
            continue  # tautology: v ∨ ¬v
        normalized.append(literals)

    def propagate(
        pending: list[tuple[int, ...]], assignment: dict[int, bool]
    ) -> list[tuple[int, ...]] | None:
        """Simplify under *assignment* until no unit clause remains;
        ``None`` on conflict."""
        while True:
            forced = False
            remaining: list[tuple[int, ...]] = []
            for clause in pending:
                open_literals: list[int] = []
                satisfied = False
                for lit in clause:
                    value = assignment.get(abs(lit))
                    if value is None:
                        open_literals.append(lit)
                    elif (lit > 0) == value:
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not open_literals:
                    return None
                if len(open_literals) == 1:
                    lit = open_literals[0]
                    assignment[abs(lit)] = lit > 0
                    forced = True
                else:
                    remaining.append(tuple(open_literals))
            if not forced:
                return remaining
            pending = remaining

    stack: list[tuple[dict[int, bool], list[tuple[int, ...]]]] = [
        ({}, normalized)
    ]
    while stack:
        assignment, pending = stack.pop()
        simplified = propagate(pending, assignment)
        if simplified is None:
            continue  # conflict: backtrack
        if not simplified:
            return True
        branch = simplified[0][0]
        variable = abs(branch)
        for value in (branch < 0, branch > 0):  # satisfy the literal last:
            trail = dict(assignment)            # LIFO pops it first
            trail[variable] = value
            stack.append((trail, simplified))
    return False


@dataclass
class SatRepairSolver(PreparedSolverMixin):
    """``CERTAINTY(q, ∅)`` by refuting a falsifying subset repair in CNF.

    Variables are the instance's facts (over the query's relations); the
    formula asserts a repair — exactly one fact per key-equal block — that
    makes ``q`` false: for every valuation image ``θ(q) ⊆ db`` the clause
    ``¬f₁ ∨ … ∨ ¬fₖ`` forbids choosing the whole image.  The query is
    certain iff that formula is **unsatisfiable**.  Exponential in the
    worst case (the residue class is coNP-hard), like the enumeration
    fallbacks — but the solver prunes through propagation instead of
    walking all ``∏ |block|`` repairs, and the prepared instance is reused
    across every decide of its plan.
    """

    query: ConjunctiveQuery
    name: str = "sat-repairs"

    def decide(self, db: DatabaseInstance) -> bool:
        relevant = sorted(
            (
                fact
                for relation in self.query.relations
                for fact in db.relation_facts(relation)
            ),
            key=lambda fact: (fact.relation, fact.values),
        )
        index = {fact: i + 1 for i, fact in enumerate(relevant)}
        blocks: dict[tuple, list[int]] = defaultdict(list)
        for fact in relevant:
            blocks[fact.block_id].append(index[fact])
        clauses: list[list[int]] = []
        for members in blocks.values():
            clauses.append(members)  # pick at least one per block...
            for i, a in enumerate(members):  # ...and at most one
                for b in members[i + 1:]:
                    clauses.append([-a, -b])
        for valuation in valuations(self.query, db):
            image = apply_valuation(self.query, valuation)
            clauses.append([-index[fact] for fact in image])
        return not solve_cnf(clauses)


def brute_force_satisfiable(formula: DualHornFormula) -> bool:
    """Exponential reference check used by the test suite (≤ ~20 vars)."""
    variables = sorted(formula.variables, key=repr)
    if len(variables) > 22:
        raise ReproError("brute-force SAT limited to 22 variables")
    for mask in range(1 << len(variables)):
        assignment = {
            v: bool(mask >> i & 1) for i, v in enumerate(variables)
        }
        if formula.evaluate(assignment):
            return True
    return False
