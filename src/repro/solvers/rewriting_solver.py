"""Solvers backed by the consistent first-order rewriting.

``RewritingSolver`` constructs the closed formula once (Theorem 1) and
evaluates it per instance; ``ProceduralSolver`` runs the forward reduction
pipeline per instance.  Both are polynomial per instance — the payoff the
FO classification promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.decision import decide
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.rewriting import RewritingResult, consistent_rewriting
from ..db.instance import DatabaseInstance
from ..fo.evaluator import Evaluator


@dataclass
class RewritingSolver:
    """Evaluate the once-constructed consistent FO rewriting."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "fo-rewriting"
    _rewriting: RewritingResult = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rewriting = consistent_rewriting(self.query, self.fks)

    @property
    def rewriting(self) -> RewritingResult:
        """The constructed rewriting (formula + pipeline provenance)."""
        return self._rewriting

    def decide(self, db: DatabaseInstance) -> bool:
        """Evaluate the once-built formula on *db*."""
        return Evaluator(db).evaluate(self._rewriting.formula)


@dataclass
class SqlRewritingSolver:
    """Evaluate the consistent rewriting as precompiled SQL over SQLite.

    The rewriting is constructed and compiled to one SQL ``SELECT`` once at
    solver construction; each :meth:`decide` loads the instance into an
    in-memory SQLite database and runs the compiled text — the ConQuer-style
    deployment mode, exercised here end-to-end per instance.  Instance
    values must be strings or integers (the SQL value domain).
    """

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "fo-sql"
    _rewriting: RewritingResult = field(init=False, repr=False)
    _sql: str = field(init=False, repr=False)

    def __post_init__(self) -> None:
        from ..fo.sql import to_sql

        self._rewriting = consistent_rewriting(self.query, self.fks)
        self._sql = to_sql(self._rewriting.formula, self.query.schema())

    @property
    def rewriting(self) -> RewritingResult:
        """The constructed rewriting (formula + pipeline provenance)."""
        return self._rewriting

    @property
    def sql(self) -> str:
        """The compiled SQL text, reusable by any engine holding the data."""
        return self._sql

    def decide(self, db: DatabaseInstance) -> bool:
        """Load *db* into SQLite and run the precompiled query."""
        import sqlite3

        from ..fo.sql import create_table_statements, insert_statements

        relevant = db.restrict_relations(self.query.relations)
        connection = sqlite3.connect(":memory:")
        try:
            for ddl in create_table_statements(self.query.schema()):
                connection.execute(ddl)
            for statement, values in insert_statements(relevant):
                connection.execute(statement, values)
            (result,) = connection.execute(self._sql).fetchone()
            return bool(result)
        finally:
            connection.close()


@dataclass
class ProceduralSolver:
    """Run the Lemma 18 reduction pipeline forward on each instance."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "procedural"

    def __post_init__(self) -> None:
        # Fail fast on non-FO problems, mirroring RewritingSolver.
        from ..core.classify import classify
        from ..exceptions import NotInFOError

        classification = classify(self.query, self.fks)
        if not classification.in_fo:
            raise NotInFOError(classification.explain())

    def decide(self, db: DatabaseInstance) -> bool:
        """Run the forward reduction pipeline on *db*."""
        return decide(self.query, self.fks, db, check_classification=False)
