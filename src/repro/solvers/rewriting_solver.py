"""Solvers backed by the consistent first-order rewriting.

``RewritingSolver`` constructs the closed formula once (Theorem 1) and
evaluates it per instance; ``ProceduralSolver`` runs the forward reduction
pipeline per instance.  Both are polynomial per instance — the payoff the
FO classification promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.decision import decide
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.rewriting import RewritingResult, consistent_rewriting
from ..db.instance import DatabaseInstance
from ..fo.evaluator import Evaluator


@dataclass
class RewritingSolver:
    """Evaluate the once-constructed consistent FO rewriting."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "fo-rewriting"
    _rewriting: RewritingResult = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rewriting = consistent_rewriting(self.query, self.fks)

    @property
    def rewriting(self) -> RewritingResult:
        """The constructed rewriting (formula + pipeline provenance)."""
        return self._rewriting

    def decide(self, db: DatabaseInstance) -> bool:
        """Evaluate the once-built formula on *db*."""
        return Evaluator(db).evaluate(self._rewriting.formula)


@dataclass
class ProceduralSolver:
    """Run the Lemma 18 reduction pipeline forward on each instance."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "procedural"

    def __post_init__(self) -> None:
        # Fail fast on non-FO problems, mirroring RewritingSolver.
        from ..core.classify import classify
        from ..exceptions import NotInFOError

        classification = classify(self.query, self.fks)
        if not classification.in_fo:
            raise NotInFOError(classification.explain())

    def decide(self, db: DatabaseInstance) -> bool:
        """Run the forward reduction pipeline on *db*."""
        return decide(self.query, self.fks, db, check_classification=False)
