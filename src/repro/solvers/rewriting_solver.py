"""Solvers backed by the consistent first-order rewriting.

``RewritingSolver`` constructs the closed formula once (Theorem 1) and
evaluates it per instance; ``SqlRewritingSolver`` compiles it to SQL once
and keeps one **warm connection per prepared solver** (schema DDL executed
once, per-instance work reduced to delete + insert + the compiled
``SELECT``) against a pluggable :class:`SqlDialect` — stdlib SQLite by
default, DuckDB when importable (:func:`duckdb_dialect`);
``ProceduralSolver`` runs the forward reduction pipeline per instance.
All are polynomial per instance — the payoff the FO classification
promises.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from ..core.decision import decide
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.rewriting import RewritingResult, consistent_rewriting
from ..db.instance import DatabaseInstance
from ..fo.evaluator import Evaluator
from .base import PreparedSolverMixin


# -- SQL dialects --------------------------------------------------------------


def _connect_sqlite():
    import sqlite3

    # check_same_thread=False: each connection is *used* only by its
    # owning thread, but close() may reap it from another one
    return sqlite3.connect(":memory:", check_same_thread=False)


def _connect_duckdb():
    import duckdb

    return duckdb.connect(":memory:")


def _duckdb_encode(value: object) -> object:
    # DuckDB columns are strictly typed; the solver declares VARCHAR and
    # tags every value with its python type so int 7 and str "7" stay
    # distinct under the single column type.  Only the str/int wire value
    # domain is accepted — silently stringifying e.g. float 1.5 would
    # collide with the string "1.5" and diverge from the other backends.
    from ..exceptions import EvaluationError

    if isinstance(value, int) and not isinstance(value, bool):
        return f"i:{value}"
    if isinstance(value, str):
        return f"s:{value}"
    raise EvaluationError(
        f"value {value!r} is outside the str/int domain of the duckdb "
        "dialect"
    )


@dataclass(frozen=True)
class SqlDialect:
    """One SQL engine behind the prepared rewriting solver.

    The seam alternative engines plug into: how to open an in-memory
    connection (DB-API-ish: ``execute``/``fetchone``/``close``), what
    column type the DDL declares (empty = typeless, SQLite style), and an
    optional injective value encoder aligning stored values with the
    constants the compiled ``SELECT`` embeds (see
    :func:`repro.fo.sql.to_sql`).  All members are module-level functions
    so prepared solvers keep pickling across process pools.
    """

    name: str
    connect: Callable[[], object]
    column_type: str = ""
    value_encoder: Callable[[object], object] | None = None


def sqlite_dialect() -> SqlDialect:
    """The default dialect: stdlib SQLite, dynamic typing, no encoding."""
    return SqlDialect(name="sqlite", connect=_connect_sqlite)


def duckdb_dialect() -> SqlDialect | None:
    """The optional DuckDB dialect, or ``None`` when DuckDB is absent.

    Gated on ``import duckdb`` succeeding so the stdlib-only container
    never references it.  Values are stored as type-tagged ``VARCHAR``
    (``i:7`` / ``s:7``), keeping integer and string constants distinct
    under DuckDB's strict typing.
    """
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return None
    return SqlDialect(
        name="duckdb",
        connect=_connect_duckdb,
        column_type="VARCHAR",
        value_encoder=_duckdb_encode,
    )


@dataclass
class RewritingSolver(PreparedSolverMixin):
    """Evaluate the once-constructed consistent FO rewriting."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "fo-rewriting"
    _rewriting: RewritingResult = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rewriting = consistent_rewriting(self.query, self.fks)

    @property
    def rewriting(self) -> RewritingResult:
        """The constructed rewriting (formula + pipeline provenance)."""
        return self._rewriting

    def decide(self, db: DatabaseInstance) -> bool:
        """Evaluate the once-built formula on *db*."""
        return Evaluator(db).evaluate(self._rewriting.formula)


@dataclass
class SqlRewritingSolver:
    """Evaluate the consistent rewriting as precompiled SQL over SQLite.

    Preparation constructs the rewriting and compiles it to one SQL
    ``SELECT``; the first :meth:`decide` opens an in-memory SQLite
    connection and runs the schema DDL, and every later call reuses that
    warm connection — per instance only the rows change (``DELETE`` +
    parameterized ``INSERT``s) before the compiled text runs.  This is the
    ConQuer-style deployment mode with prepared-statement economics: one
    connection per plan, not one per instance.  ``close()`` drops the
    connection (a later decide transparently re-warms).  Instance values
    must be strings or integers (the SQL value domain).

    Set ``warm=False`` to restore the historical rebuild-per-call behaviour
    (benchmark E16's baseline).  :attr:`connections_opened` counts real
    SQLite connections for tests and benchmarks.

    Thread-safe without serializing execution: each thread warms its *own*
    connection (so the thread-pool executor keeps SQLite's genuine
    parallelism — one connection per worker, not one per instance) and
    only bookkeeping and ``close()`` take locks.  Pickling (process-pool
    executor) drops the connections; each worker re-warms its own.
    """

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "fo-sql"
    warm: bool = True
    dialect: SqlDialect = field(default_factory=sqlite_dialect)
    connections_opened: int = field(init=False, default=0)
    _rewriting: RewritingResult = field(init=False, repr=False)
    _sql: str = field(init=False, repr=False)
    _ddl: tuple[str, ...] = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)
    _local: threading.local = field(init=False, repr=False)
    _entries: list = field(init=False, repr=False)
    _epoch: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        from ..fo.sql import create_table_statements, to_sql

        self._rewriting = consistent_rewriting(self.query, self.fks)
        self._sql = to_sql(
            self._rewriting.formula,
            self.query.schema(),
            value_encoder=self.dialect.value_encoder,
        )
        self._ddl = tuple(
            create_table_statements(
                self.query.schema(), self.dialect.column_type
            )
        )
        self._lock = threading.Lock()
        self._local = threading.local()
        self._entries = []

    @property
    def rewriting(self) -> RewritingResult:
        """The constructed rewriting (formula + pipeline provenance)."""
        return self._rewriting

    @property
    def sql(self) -> str:
        """The compiled SQL text, reusable by any engine holding the data."""
        return self._sql

    @property
    def connection_is_open(self) -> bool:
        """True while at least one warm connection is held."""
        with self._lock:
            return bool(self._entries)

    def _connect(self):
        """A fresh in-memory database with the schema DDL applied."""
        connection = self.dialect.connect()
        for ddl in self._ddl:
            connection.execute(ddl)
        with self._lock:
            self.connections_opened += 1
        return connection

    def _run(self, connection, db: DatabaseInstance) -> bool:
        from ..fo.sql import insert_statements

        for statement, values in insert_statements(
            db.restrict_relations(self.query.relations),
            value_encoder=self.dialect.value_encoder,
        ):
            connection.execute(statement, values)
        (result,) = connection.execute(self._sql).fetchone()
        return bool(result)

    def _warm_entry(self) -> "_ConnectionEntry":
        """This thread's warm connection, (re)created after a close()."""
        entry = getattr(self._local, "entry", None)
        if entry is None or entry.epoch != self._epoch or entry.closed:
            entry = _ConnectionEntry(self._connect(), self._epoch)
            with self._lock:
                if entry.epoch != self._epoch:  # close() raced the warm-up
                    entry.epoch = self._epoch
                self._entries.append(entry)
            self._local.entry = entry
        return entry

    def decide(self, db: DatabaseInstance) -> bool:
        """Run the precompiled query over *db* on this thread's warm
        connection."""
        if not self.warm:
            connection = self._connect()
            try:
                return self._run(connection, db)
            finally:
                connection.close()
        entry = self._warm_entry()
        with entry.lock:  # only vs close(); other threads have own entries
            self._clear_tables(entry.connection)
            return self._run(entry.connection, db)

    def _clear_tables(self, connection) -> None:
        from ..fo.sql import _quote_identifier

        for relation in sorted(self.query.relations):
            connection.execute(f"DELETE FROM {_quote_identifier(relation)}")

    def close(self) -> None:
        """Drop every warm connection (idempotent; decide re-warms lazily)."""
        with self._lock:
            entries, self._entries = self._entries, []
            self._epoch += 1
        for entry in entries:
            with entry.lock:  # wait out any in-flight decide on this entry
                entry.connection.close()
                entry.closed = True

    def __enter__(self) -> "SqlRewritingSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pickling (process-pool executor) ------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_entries"] = []  # connections do not cross processes
        del state["_lock"], state["_local"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._local = threading.local()


class _ConnectionEntry:
    """One thread's warm connection plus the lock ``close()`` synchronizes
    on; ``epoch`` invalidates entries that survived a ``close()`` in their
    thread's local storage."""

    __slots__ = ("connection", "epoch", "closed", "lock")

    def __init__(self, connection, epoch: int):
        self.connection = connection
        self.epoch = epoch
        self.closed = False
        self.lock = threading.Lock()


@dataclass
class ProceduralSolver(PreparedSolverMixin):
    """Run the Lemma 18 reduction pipeline forward on each instance."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = "procedural"

    def __post_init__(self) -> None:
        # Fail fast on non-FO problems, mirroring RewritingSolver.
        from ..core.classify import classify
        from ..exceptions import NotInFOError

        classification = classify(self.query, self.fks)
        if not classification.in_fo:
            raise NotInFOError(classification.explain())

    def decide(self, db: DatabaseInstance) -> bool:
        """Run the forward reduction pipeline on *db*."""
        return decide(self.query, self.fks, db, check_classification=False)
