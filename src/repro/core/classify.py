"""The dichotomy classifier (Theorem 12).

Given a self-join-free Boolean conjunctive query ``q`` and a set ``FK`` of
unary foreign keys about ``q``:

1. attack graph acyclic and no block-interference ⟹ ``CERTAINTY(q, FK)`` is
   in FO (a consistent first-order rewriting is effectively constructible);
2. attack graph cyclic ⟹ L-hard (Lemma 14), hence not in FO;
3. block-interference ⟹ NL-hard (Lemma 15), hence not in FO.

All three conditions are decidable; the classifier reports which hold,
together with machine-checkable witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .atoms import Atom
from .attack_graph import AttackGraph
from .foreign_keys import ForeignKeySet
from .interference import InterferenceWitness, find_block_interference
from .query import ConjunctiveQuery


class ComplexityVerdict(Enum):
    """Where Theorem 12 places ``CERTAINTY(q, FK)``."""

    FO = "in FO"
    L_HARD = "L-hard (cyclic attack graph), not in FO"
    NL_HARD = "NL-hard (block-interference), not in FO"

    @property
    def in_fo(self) -> bool:
        return self is ComplexityVerdict.FO


@dataclass(frozen=True)
class Classification:
    """Full outcome of the Theorem 12 decision procedure."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    attack_graph_cyclic: bool
    attack_cycle: tuple[Atom, Atom] | None
    interference: InterferenceWitness | None
    verdict: ComplexityVerdict

    @property
    def in_fo(self) -> bool:
        return self.verdict.in_fo

    def explain(self) -> str:
        """A one-paragraph human-readable explanation."""
        lines = [f"CERTAINTY(q, FK) for q = {self.query!r}, FK = {self.fks!r}:"]
        if self.attack_graph_cyclic:
            assert self.attack_cycle is not None
            f, g = self.attack_cycle
            lines.append(
                f"  attack graph is cyclic ({f!r} ⇝ {g!r} ⇝ {f!r}) — "
                "L-hard by Lemma 14"
            )
        else:
            lines.append("  attack graph is acyclic")
        if self.interference is not None:
            lines.append(
                f"  block-interference: {self.interference!r} — "
                "NL-hard by Lemma 15"
            )
        else:
            lines.append("  no block-interference")
        lines.append(f"  verdict: {self.verdict.value}")
        return "\n".join(lines)


def classify(query: ConjunctiveQuery, fks: ForeignKeySet) -> Classification:
    """Run the Theorem 12 decision procedure.

    Raises :class:`repro.exceptions.ForeignKeyError` when *fks* is not about
    *query* (the paper's standing assumption; see Proposition 19 for what can
    happen without it).
    """
    fks.require_about(query)
    graph = AttackGraph(query)
    cycle = graph.two_cycle()
    cyclic = cycle is not None
    witness = find_block_interference(query, fks)
    if witness is not None:
        # NL-hardness subsumes L-hardness (L ⊆ NL), so report the stronger
        # lower bound when both apply.
        verdict = ComplexityVerdict.NL_HARD
    elif cyclic:
        verdict = ComplexityVerdict.L_HARD
    else:
        verdict = ComplexityVerdict.FO
    return Classification(
        query=query,
        fks=fks,
        attack_graph_cyclic=cyclic,
        attack_cycle=cycle,
        interference=witness,
        verdict=verdict,
    )


def is_in_fo(query: ConjunctiveQuery, fks: ForeignKeySet) -> bool:
    """Shorthand: does ``CERTAINTY(q, FK)`` admit a consistent FO rewriting?"""
    return classify(query, fks).in_fo


class PkTrichotomy(Enum):
    """The Koutris–Wijsen trichotomy for ``CERTAINTY(q)`` (``FK = ∅``).

    Background the paper builds on (its Section 2): for every sjfBCQ,
    ``CERTAINTY(q)`` is in FO, L-complete, or coNP-complete, and the case is
    read off the attack graph — acyclic ⇒ FO; cyclic with no strong
    2-cycle ⇒ L-complete; some 2-cycle of two strong attacks ⇒
    coNP-complete.
    """

    FO = "in FO"
    L_COMPLETE = "L-complete"
    CONP_COMPLETE = "coNP-complete"


def pk_trichotomy(query: ConjunctiveQuery) -> PkTrichotomy:
    """Classify ``CERTAINTY(q)`` (primary keys only) into the trichotomy."""
    graph = AttackGraph(query)
    if graph.is_acyclic():
        return PkTrichotomy.FO
    if graph.strong_two_cycle() is not None:
        return PkTrichotomy.CONP_COMPLETE
    return PkTrichotomy.L_COMPLETE
