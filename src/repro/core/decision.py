"""Procedural decision of ``CERTAINTY(q, FK)`` in the FO case.

This is the *forward* realization of the Lemma 18 pipeline: instead of
composing one closed formula, each reduction step transforms the input
instance (`ReductionStep.transform_instance`), and the Lemma 45 case split
iterates over the facts of the constant block, recursing with the atom's
variables bound in a parameter environment.  The final foreign-key-free
problem is decided by the Koutris–Wijsen rewriting.

The composed-formula path (:mod:`repro.core.rewriting`) and this procedural
path are two independent implementations of the same decision procedure;
the test suite checks they agree with each other and with the ⊕-repair
oracle.
"""

from __future__ import annotations

from typing import Mapping

from ..db.constraints import dangling_keys_of
from ..db.instance import DatabaseInstance
from ..exceptions import EvaluationError, ForeignKeyError, NotInFOError
from ..fo.evaluator import Evaluator
from .classify import classify
from .foreign_keys import ForeignKeySet
from .query import ConjunctiveQuery
from .reductions import (
    dd_removal_step,
    do_removal_step,
    empty_key_case,
    fk_type,
    oo_removal_step,
    trivial_removal_step,
    weak_removal_step,
)
from .rewriting import _pick_empty_key, _pick_oo, _pick_weak_target
from .rewriting_pk import rewrite_primary_keys
from .terms import Constant, FreshVariableFactory, Parameter


def _resolve_terms(terms, env: Mapping[Parameter, object]) -> tuple[object, ...]:
    values = []
    for term in terms:
        if isinstance(term, Constant):
            values.append(term.value)
        elif isinstance(term, Parameter):
            if term not in env:
                raise EvaluationError(f"unbound parameter {term!r}")
            values.append(env[term])
        else:
            raise EvaluationError(
                f"unexpected free variable {term!r} in a Lemma 45 key"
            )
    return tuple(values)


def decide(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    db: DatabaseInstance,
    check_classification: bool = True,
) -> bool:
    """Decide ``CERTAINTY(q, FK)`` on *db* procedurally (FO cases only)."""
    if check_classification:
        classification = classify(query, fks)
        if not classification.in_fo:
            raise NotInFOError(classification.explain())
    fresh = FreshVariableFactory(
        {v.name for v in query.variables}
        | {p.name for p in query.parameters}
    )
    return _decide(
        query,
        fks.implication_closure(),
        db.restrict_relations(query.relations),
        {},
        fresh,
    )


def _decide(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    db: DatabaseInstance,
    env: dict[Parameter, object],
    fresh: FreshVariableFactory,
) -> bool:
    while len(fks) > 0:
        weak_target = _pick_weak_target(query, fks)
        if weak_target is not None:
            step = weak_removal_step(query, fks, weak_target)
        elif any(fks.is_trivial(fk) for fk in fks):
            step = trivial_removal_step(query, fks)
        else:
            types = {fk: fk_type(query, fks, fk) for fk in fks}
            oo = _pick_oo(query, fks, types)
            dd = next(
                (fk for fk in sorted(fks, key=repr) if types[fk] == "dd"),
                None,
            )
            if oo is not None:
                step = oo_removal_step(query, fks, oo, fresh)
            elif dd is not None:
                step = dd_removal_step(query, fks, dd)
            else:
                empty = _pick_empty_key(query)
                if empty is not None:
                    return _decide_empty_key(query, fks, db, env, fresh, empty)
                do = next(
                    (fk for fk in sorted(fks, key=repr) if types[fk] == "do"),
                    None,
                )
                if do is None:
                    raise ForeignKeyError(
                        f"no applicable reduction for {fks!r}"
                    )
                step = do_removal_step(query, fks, do, fresh)
        assert step.transform_instance is not None
        db = step.transform_instance(db, env)
        query, fks = step.query_after, step.fks_after
    formula = rewrite_primary_keys(query, fresh)
    return Evaluator(db).evaluate(formula, env)


def _decide_empty_key(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    db: DatabaseInstance,
    env: dict[Parameter, object],
    fresh: FreshVariableFactory,
    relation: str,
) -> bool:
    """The Lemma 45 case split, executed over the concrete instance."""
    case = empty_key_case(query, fks, relation)
    atom = case.atom
    key_values = _resolve_terms(atom.key_terms, env)
    block = db.block_of(relation, key_values)
    # Witness: some block fact not dangling with respect to FK[N→].
    if not any(
        not dangling_keys_of(fact, fks, db) for fact in block
    ):
        return False
    # Pattern of non-key terms, resolved against the environment.
    inner_db = db.restrict_relations(case.inner_query.relations)
    for fact in sorted(block, key=repr):
        extended = dict(env)
        for term, value in zip(atom.nonkey_terms, fact.nonkey):
            if isinstance(term, Constant):
                if term.value != value:
                    return False
            elif isinstance(term, Parameter):
                if extended.get(term, value) != value:
                    return False
                extended[term] = value
            else:  # a variable of x⃗: freeze it to this fact's value
                parameter = case.frozen[term]
                if extended.get(parameter, value) != value:
                    return False
                extended[parameter] = value
        if not _decide(
            case.inner_query, case.inner_fks, inner_db, extended, fresh
        ):
            return False
    return True
