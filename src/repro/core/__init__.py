"""Core: the paper's query model and decision machinery."""

from .atoms import Atom
from .attack_graph import Attack, AttackGraph
from .classify import (
    Classification,
    ComplexityVerdict,
    PkTrichotomy,
    classify,
    is_in_fo,
    pk_trichotomy,
)
from .decision import decide
from .fds import FDSet, FunctionalDependency, free_variables
from .foreign_keys import (
    ForeignKey,
    ForeignKeySet,
    fk_set,
    parse_foreign_key,
)
from .interference import (
    InterferenceWitness,
    find_block_interference,
    has_block_interference,
    is_block_interfering,
)
from .obedience import (
    ObedienceVerdict,
    atom_obedient,
    nonkey_positions,
    obedience_test_query,
    semantic_obedient,
    subquery_for_positions,
    subquery_for_relation,
    syntactic_obedient,
    syntactic_verdict,
)
from .query import ConjunctiveQuery, parse_atom, parse_query, query_of
from .reductions import ReductionStep, fk_type
from .rewriting import RewritingResult, consistent_rewriting
from .rewriting_pk import rewrite_primary_keys
from .schema import Schema, Signature
from .terms import (
    Constant,
    FreshConstantFactory,
    FreshVariableFactory,
    Parameter,
    Term,
    Variable,
)

__all__ = [
    "Atom", "Attack", "AttackGraph", "Classification", "ComplexityVerdict",
    "ConjunctiveQuery", "Constant", "FDSet", "ForeignKey", "ForeignKeySet",
    "FreshConstantFactory", "FreshVariableFactory", "FunctionalDependency",
    "InterferenceWitness", "ObedienceVerdict", "Parameter", "PkTrichotomy", "ReductionStep",
    "RewritingResult", "Schema", "Signature", "Term", "Variable",
    "atom_obedient", "classify", "consistent_rewriting", "decide",
    "find_block_interference", "fk_set", "fk_type", "free_variables",
    "has_block_interference", "is_block_interfering", "is_in_fo",
    "nonkey_positions", "obedience_test_query", "parse_atom",
    "parse_foreign_key", "parse_query", "pk_trichotomy", "query_of",
    "rewrite_primary_keys",
    "semantic_obedient", "subquery_for_positions", "subquery_for_relation",
    "syntactic_obedient", "syntactic_verdict",
]
