"""Block-interference (Definition 9).

A strong foreign key ``N[j] → O`` of ``FK*`` is *block-interfering* in ``q``
iff

1. the ``O``-atom of ``q`` is obedient;
2. the term ``t_j`` (at position ``(N, j)``) is a variable of
   ``V = {v ∈ vars(q') | K(q) ̸⊨ ∅ → v}`` where ``q' = q ∖ {N-atom}``; and
3. (a) the remaining non-key positions of ``N`` form a disobedient set, or
   (b) some key term ``t_i`` of ``N`` is a variable connected to ``t_j``
   in the restricted Gaifman graph ``G_V(q')``.

``(q, FK)`` *has block-interference* iff some key of ``FK*`` is
block-interfering.  Block-interference is what pushes ``CERTAINTY(q, FK)``
out of FO (Theorem 12, item 3: NL-hardness).
"""

from __future__ import annotations

from dataclasses import dataclass

from .fds import FDSet
from .foreign_keys import ForeignKey, ForeignKeySet
from .obedience import atom_obedient, nonkey_positions, syntactic_obedient
from .query import ConjunctiveQuery
from .terms import Variable, is_variable


@dataclass(frozen=True)
class InterferenceWitness:
    """A block-interfering foreign key together with which clause fired.

    ``via`` is ``"3a"`` (disobedient remainder) or ``"3b"`` (key connected
    to the referencing variable); both may hold, in which case ``"3a"`` is
    reported first.
    """

    foreign_key: ForeignKey
    via: str
    variable: Variable

    def __repr__(self) -> str:
        return f"{self.foreign_key!r} block-interferes via ({self.via}) on {self.variable}"


def is_block_interfering(
    query: ConjunctiveQuery, fks: ForeignKeySet, fk: ForeignKey
) -> InterferenceWitness | None:
    """Check Definition 9 for one strong foreign key (of ``FK*``)."""
    if not fks.schema[fk.source].key_size < fk.position:
        return None  # weak keys are never block-interfering
    if not (query.has_relation(fk.source) and query.has_relation(fk.target)):
        return None
    n_atom = query.atom(fk.source)
    t_j = n_atom.term_at(fk.position)
    # Condition 1: the O-atom is obedient.
    if not atom_obedient(query, fks, fk.target):
        return None
    # Condition 2: t_j is a variable of V (q' = q without the N-atom).
    if not is_variable(t_j):
        return None
    q_prime = query.without(fk.source)
    if t_j not in q_prime.variables:
        return None
    forced = FDSet.of_query(query).constant_variables()
    if t_j in forced:
        return None
    v_pool = frozenset(v for v in q_prime.variables if v not in forced)
    # Condition 3a: remaining non-key positions of N are disobedient.
    remainder = nonkey_positions(n_atom) - {fk.source_position}
    if remainder and not syntactic_obedient(query, fks, remainder):
        return InterferenceWitness(fk, "3a", t_j)
    # Condition 3b: some key term of N is a variable connected to t_j in
    # G_V(q').
    for key_term in n_atom.key_terms:
        if is_variable(key_term) and q_prime.connected(
            key_term, t_j, restrict_to=v_pool
        ):
            return InterferenceWitness(fk, "3b", t_j)
    return None


def find_block_interference(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> InterferenceWitness | None:
    """The first block-interfering key of ``FK*``, in deterministic order."""
    closure = fks.implication_closure()
    query_relations = query.relations
    for fk in closure:
        if fk.source not in query_relations or fk.target not in query_relations:
            continue
        witness = is_block_interfering(query, fks, fk)
        if witness is not None:
            return witness
    return None


def has_block_interference(query: ConjunctiveQuery, fks: ForeignKeySet) -> bool:
    """Does ``(q, FK)`` have block-interference?"""
    return find_block_interference(query, fks) is not None
