"""Obedience of position sets and atoms (Definition 5, Theorem 7).

A set ``P`` of non-primary-key positions of a relation ``R`` is *obedient*
over ``FK`` and ``q`` if replacing the terms of ``q``'s ``R``-atom at the
positions of ``P`` by fresh variables, and dropping the subquery
``q^FK_P`` reachable from ``P`` in the dependency graph, yields a query
equivalent to ``q`` under ``FK``.  Theorem 7 characterizes this syntactically
by four conditions, which :func:`syntactic_obedient` implements; the
semantic definition is implemented by :func:`semantic_obedient` through the
chase and is used to cross-validate the theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..exceptions import ForeignKeyError
from .atoms import Atom
from .foreign_keys import ForeignKeySet, Position
from .query import ConjunctiveQuery
from .terms import FreshVariableFactory, Term, is_constantlike, is_variable


def nonkey_positions(atom: Atom) -> frozenset[Position]:
    """``P_R = {(R, i) | i ∈ {k+1, …, n}}``."""
    return frozenset((atom.relation, i) for i in atom.signature.nonkey_positions)


def subquery_for_positions(
    query: ConjunctiveQuery, fks: ForeignKeySet, positions: Iterable[Position]
) -> ConjunctiveQuery:
    """``q^FK_P``: the atoms of relations reachable from *positions*.

    The smallest subset of *query* containing the ``S``-atom whenever the
    closure ``P_FK`` contains some position ``(S, j)``.
    """
    closed = fks.closure(positions)
    names = {relation for relation, _ in closed}
    return query.restrict(names)


def subquery_for_relation(
    query: ConjunctiveQuery, fks: ForeignKeySet, relation: str
) -> ConjunctiveQuery:
    """``q^FK_R``: shorthand for ``q^FK_{P_R}``."""
    return subquery_for_positions(
        query, fks, nonkey_positions(query.atom(relation))
    )


@dataclass(frozen=True)
class ObedienceVerdict:
    """Outcome of the syntactic check, with the violated condition if any.

    ``violated`` is one of ``None`` (obedient), ``"I"`` (cycle), ``"II"``
    (constant in the closure), ``"III"`` (variable shared between closure and
    complement), ``"IV"`` (variable repeated at two non-key closure
    positions) — matching Theorem 7's numbering.
    """

    obedient: bool
    violated: str | None = None
    witness: tuple[Position, ...] = ()

    def __bool__(self) -> bool:
        return self.obedient


def _term_at(query: ConjunctiveQuery, position: Position) -> Term | None:
    relation, index = position
    if not query.has_relation(relation):
        return None
    return query.atom(relation).term_at(index)


def syntactic_verdict(
    query: ConjunctiveQuery, fks: ForeignKeySet, positions: Iterable[Position]
) -> ObedienceVerdict:
    """Theorem 7's four conditions, reporting the first violation found."""
    position_set = frozenset(positions)
    for relation, index in position_set:
        atom = query.atom(relation)
        if index <= atom.key_size:
            raise ForeignKeyError(
                f"position ({relation},{index}) is a primary-key position; "
                "obedience is defined for non-primary-key positions only"
            )
    # (I) no position of P on a cycle of the dependency graph.
    for position in sorted(position_set):
        if fks.position_on_cycle(position):
            return ObedienceVerdict(False, "I", (position,))
    closed = fks.closure(position_set)
    complement = fks.complement(position_set)
    # (II) no constant (or parameter) of q at a position of the closure.
    for position in sorted(closed):
        term = _term_at(query, position)
        if term is not None and is_constantlike(term):
            return ObedienceVerdict(False, "II", (position,))
    # (III) no variable both in the closure and in the complement.
    closure_vars = {}
    for position in sorted(closed):
        term = _term_at(query, position)
        if term is not None and is_variable(term):
            closure_vars.setdefault(term, position)
    for position in sorted(complement):
        term = _term_at(query, position)
        if term is not None and is_variable(term) and term in closure_vars:
            return ObedienceVerdict(
                False, "III", (closure_vars[term], position)
            )
    # (IV) no variable at two distinct non-primary-key positions of the closure.
    seen: dict[object, Position] = {}
    for position in sorted(closed):
        relation, index = position
        if not query.has_relation(relation):
            continue
        atom = query.atom(relation)
        if index <= atom.key_size:
            continue
        term = atom.term_at(index)
        if is_variable(term):
            if term in seen:
                return ObedienceVerdict(False, "IV", (seen[term], position))
            seen[term] = position
    return ObedienceVerdict(True)


def syntactic_obedient(
    query: ConjunctiveQuery, fks: ForeignKeySet, positions: Iterable[Position]
) -> bool:
    """Is the position set obedient, by the Theorem 7 characterization?"""
    return syntactic_verdict(query, fks, positions).obedient


def atom_obedient(query: ConjunctiveQuery, fks: ForeignKeySet,
                  relation: str) -> bool:
    """Is the *relation*-atom obedient (all its non-key positions together)?

    By Corollary 8 this is equivalent to every singleton being obedient.
    Atoms without non-primary-key positions are trivially obedient.
    """
    return syntactic_obedient(
        query, fks, nonkey_positions(query.atom(relation))
    )


def replaced_atom(atom: Atom, positions: Iterable[Position],
                  fresh: FreshVariableFactory) -> Atom:
    """``F_P``: *atom* with the terms at *positions* replaced by fresh variables."""
    indices = {i for (_, i) in positions}
    terms = [
        fresh.fresh("obd") if index in indices else term
        for index, term in enumerate(atom.terms, start=1)
    ]
    return Atom(atom.relation, tuple(terms), atom.key_size)


def obedience_test_query(
    query: ConjunctiveQuery, fks: ForeignKeySet, positions: Iterable[Position]
) -> ConjunctiveQuery:
    """``(q \\ q^FK_P) ∪ {F_P}`` — the left-hand side of condition (2) in
    Definition 5 (whose ``FK``-entailment of ``q`` defines obedience)."""
    position_set = frozenset(positions)
    if not position_set:
        return query
    relations = {r for (r, _) in position_set}
    if len(relations) != 1:
        raise ForeignKeyError(
            "obedience is defined for positions of a single relation"
        )
    (relation,) = relations
    atom = query.atom(relation)
    fresh = FreshVariableFactory({v.name for v in query.variables})
    reduced = query.without(
        *subquery_for_positions(query, fks, position_set).relations
    )
    return reduced.with_atom(replaced_atom(atom, position_set, fresh))


def semantic_obedient(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    positions: Iterable[Position],
    chase_bound: int = 200,
) -> bool:
    """Definition 5's semantic obedience, decided by the chase.

    ``q' ⊨_FK q`` for Boolean conjunctive queries holds iff the chase of the
    canonical instance of ``q'`` with the foreign keys satisfies ``q``.  The
    chase of unary inclusion dependencies may be infinite on cyclic
    dependency graphs; beyond *chase_bound* inserted facts we raise
    :class:`ForeignKeyError` (tests only use this routine on terminating
    configurations; the production check is :func:`syntactic_obedient`).
    """
    from ..db import chase_entails  # local import: db depends on core

    position_set = frozenset(positions)
    if not position_set:
        return True
    test_query = obedience_test_query(query, fks, position_set)
    return chase_entails(test_query, fks, query, bound=chase_bound)
