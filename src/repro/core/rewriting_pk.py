"""Consistent first-order rewriting for primary keys only (Theorem 2).

Implements the Koutris–Wijsen / Fuxman–Miller rewriting for a query with an
acyclic attack graph: repeatedly pick an *unattacked* atom
``F = R(t1..tk | tk+1..tn)`` and emit

    ∃u⃗ [ ∃v⃗ R(u⃗, v⃗) ∧ ∀w⃗ ( R(u⃗, w⃗) → match(w⃗, t⃗) ∧ φ' ) ]

where ``u⃗`` quantifies the distinct key variables (key constants are kept
in place), ``match`` equates each universally quantified non-key position
with its constant / repeated-variable pattern, and ``φ'`` recursively
rewrites the remaining query with ``F``'s variables *frozen* to the
quantified values.  Freezing uses :class:`Parameter` terms so the recursive
attack graph treats them as constants; the parameters are replaced by the
quantified variables when the level is assembled.

The construction supports free parameters in the input query (needed by the
Lemma 45 case split of the foreign-key pipeline); those remain free in the
output formula.
"""

from __future__ import annotations

from ..exceptions import NotInFOError
from ..fo.formula import (
    Formula,
    Rel,
    TRUE,
    conj,
    equality,
    exists,
    forall,
    implies,
)
from ..fo.substitute import substitute_terms
from .atoms import Atom
from .attack_graph import AttackGraph
from .query import ConjunctiveQuery
from .terms import (
    FreshVariableFactory,
    Parameter,
    Term,
    Variable,
    is_variable,
)


def rewrite_primary_keys(
    query: ConjunctiveQuery,
    fresh: FreshVariableFactory | None = None,
) -> Formula:
    """The consistent FO rewriting of ``CERTAINTY(q)`` (no foreign keys).

    Raises :class:`NotInFOError` when the attack graph is cyclic.
    """
    if fresh is None:
        fresh = FreshVariableFactory(
            {v.name for v in query.variables}
            | {p.name for p in query.parameters}
        )
    return _rewrite(query, fresh)


def _rewrite(query: ConjunctiveQuery, fresh: FreshVariableFactory) -> Formula:
    if not query.atoms:
        return TRUE
    graph = AttackGraph(query)
    unattacked = graph.unattacked_atoms()
    if not unattacked:
        raise NotInFOError(
            f"attack graph of {query!r} is cyclic: CERTAINTY(q) is L-hard "
            "and admits no consistent first-order rewriting"
        )
    atom = min(unattacked, key=lambda a: a.relation)
    return _rewrite_step(query, atom, fresh)


def _rewrite_step(
    query: ConjunctiveQuery, atom: Atom, fresh: FreshVariableFactory
) -> Formula:
    # Substitution freezing this atom's variables for the recursive call,
    # expressed with parameters carrying the quantified variables' names.
    freeze: dict[Variable, Parameter] = {}
    # -- key positions: quantify each distinct key variable once.
    key_out: list[Term] = []
    key_vars: list[Variable] = []
    for term in atom.key_terms:
        if is_variable(term):
            if term not in freeze:
                u = fresh.fresh(f"u_{term.name}")
                freeze[term] = Parameter(u.name)
                key_vars.append(u)
            key_out.append(freeze[term])
        else:
            key_out.append(term)
    # -- universal part: ∀w⃗ (R(u⃗, w⃗) → match ∧ φ').
    w_vars = [fresh.fresh("w") for _ in atom.nonkey_terms]
    matches: list[Formula] = []
    for w, term in zip(w_vars, atom.nonkey_terms):
        if is_variable(term):
            if term in freeze:
                matches.append(equality(w, freeze[term]))
            else:
                freeze[term] = Parameter(w.name)
        else:
            matches.append(equality(w, term))
    rest = query.without(atom.relation).substitute(freeze)
    sub_formula = _rewrite(rest, fresh)
    # Bind this level's parameters to the quantified variables *before*
    # wrapping the quantifier blocks (the parameters stand for exactly these
    # bound values, so the "capture" is the point).
    binder: dict[Term, Term] = {Parameter(u.name): u for u in key_vars}
    binder.update({Parameter(w.name): w for w in w_vars})
    body = substitute_terms(conj(matches + [sub_formula]), binder)
    key_bound = tuple(binder.get(t, t) for t in key_out)
    universal = forall(
        w_vars,
        implies(
            Rel(atom.relation, key_bound + tuple(w_vars), atom.key_size),
            body,
        ),
    )
    # -- witness part: ∃v⃗ R(u⃗, v⃗) with unconstrained fresh non-keys.
    v_vars = [fresh.fresh("v") for _ in atom.nonkey_terms]
    witness = exists(
        v_vars,
        Rel(atom.relation, key_bound + tuple(v_vars), atom.key_size),
    )
    return exists(key_vars, conj([witness, universal]))
