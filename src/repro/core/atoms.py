"""Atoms: relation names applied to terms, with key/non-key structure.

An atom ``R(t1, …, tk, t(k+1), …, tn)`` (Section 3.1) carries its relation
name, its term tuple and its signature.  ``key(F)`` is the set of *variables*
occurring at primary-key positions; ``vars(F)`` the set of all variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..exceptions import QueryError
from .schema import Signature
from .terms import Constant, Parameter, Term, Variable, is_variable


@dataclass(frozen=True)
class Atom:
    """An ``R``-atom over a signature ``[n, k]``.

    Positions are 1-based throughout, matching the paper's ``R[i]`` notation.
    """

    relation: str
    terms: tuple[Term, ...]
    key_size: int

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError(f"atom {self.relation} must have positive arity")
        if not 1 <= self.key_size <= len(self.terms):
            raise QueryError(
                f"atom {self.relation}: key size {self.key_size} outside "
                f"[1, {len(self.terms)}]"
            )

    # -- structure ----------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def signature(self) -> Signature:
        return Signature(self.arity, self.key_size)

    @property
    def key_terms(self) -> tuple[Term, ...]:
        """Terms at primary-key positions ``1..k``."""
        return self.terms[: self.key_size]

    @property
    def nonkey_terms(self) -> tuple[Term, ...]:
        """Terms at non-primary-key positions ``k+1..n``."""
        return self.terms[self.key_size:]

    def term_at(self, position: int) -> Term:
        """The term at 1-based *position*."""
        if not 1 <= position <= self.arity:
            raise QueryError(
                f"{self.relation} has arity {self.arity}; no position {position}"
            )
        return self.terms[position - 1]

    def positions_of(self, term: Term) -> list[int]:
        """All 1-based positions where *term* occurs."""
        return [i + 1 for i, t in enumerate(self.terms) if t == term]

    def is_key_position(self, position: int) -> bool:
        return 1 <= position <= self.key_size

    # -- variables ----------------------------------------------------------

    @property
    def variables(self) -> frozenset[Variable]:
        """``vars(F)``: variables occurring in the atom."""
        return frozenset(t for t in self.terms if is_variable(t))

    @property
    def key_variables(self) -> frozenset[Variable]:
        """``key(F)``: variables occurring at primary-key positions."""
        return frozenset(t for t in self.key_terms if is_variable(t))

    @property
    def constants(self) -> frozenset[Constant]:
        return frozenset(t for t in self.terms if isinstance(t, Constant))

    @property
    def parameters(self) -> frozenset[Parameter]:
        return frozenset(t for t in self.terms if isinstance(t, Parameter))

    @property
    def is_fact_shaped(self) -> bool:
        """True iff the atom contains no variables (it denotes a fact)."""
        return not self.variables

    # -- transformation -----------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Replace variables according to *mapping* (missing ones kept)."""
        return Atom(
            self.relation,
            tuple(mapping.get(t, t) if is_variable(t) else t for t in self.terms),
            self.key_size,
        )

    def replace_position(self, position: int, term: Term) -> "Atom":
        """Return a copy with the term at 1-based *position* replaced.

        This is the paper's ``J[i→u]`` notation (proof of Lemma 15).
        """
        if not 1 <= position <= self.arity:
            raise QueryError(
                f"{self.relation} has arity {self.arity}; no position {position}"
            )
        terms = list(self.terms)
        terms[position - 1] = term
        return Atom(self.relation, tuple(terms), self.key_size)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    def __repr__(self) -> str:
        key = ",".join(map(str, self.key_terms))
        rest = ",".join(map(str, self.nonkey_terms))
        if rest:
            return f"{self.relation}({key}|{rest})"
        return f"{self.relation}({key})"
