"""Construction of consistent first-order rewritings (Theorem 1 / Lemma 18).

The driver below implements the proof plan of Lemma 18: close ``FK`` under
implication, then repeatedly fire the first applicable reduction —

1. Lemma 36 while a non-trivial weak key exists,
2. drop trivial keys,
3. Lemma 37 for a strong ``o→o`` key whose target has no outgoing keys,
4. Lemma 39 for a strong ``d→d`` key,
5. Lemma 45 when some atom has no key variable (a case split that recurses
   into a parameterized subproblem),
6. Lemma 40 for a strong ``d→o`` key —

until no foreign key remains, finishing with the Koutris–Wijsen rewriting
of :mod:`repro.core.rewriting_pk`.  The formula is assembled by composing
each step's backward ``translate`` around the inner rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ForeignKeyError, NotInFOError
from ..fo.formula import Formula
from ..fo.simplify import simplify
from .classify import Classification, classify
from .foreign_keys import ForeignKey, ForeignKeySet
from .interference import has_block_interference
from .obedience import subquery_for_relation
from .query import ConjunctiveQuery
from .reductions import (
    ReductionStep,
    dd_removal_step,
    do_removal_step,
    empty_key_case,
    empty_key_formula,
    fk_type,
    oo_removal_step,
    trivial_removal_step,
    weak_removal_step,
)
from .rewriting_pk import rewrite_primary_keys
from .terms import FreshVariableFactory


@dataclass
class RewritingResult:
    """A constructed consistent first-order rewriting with its provenance."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    formula: Formula
    classification: Classification
    steps: list[ReductionStep] = field(default_factory=list)

    @property
    def lemma_trace(self) -> list[str]:
        """Which helping lemma fired at each pipeline step (bench E7)."""
        return [step.lemma for step in self.steps]


def _identity_translate_45(formula: Formula) -> Formula:
    """Placeholder translator for the Lemma 45 record: the actual formula
    assembly happens in :func:`repro.core.reductions.empty_key_formula`."""
    return formula


def _pick_weak_target(query: ConjunctiveQuery,
                      fks: ForeignKeySet) -> str | None:
    """A relation referenced by a non-trivial weak key, if any (Lemma 36)."""
    for fk in fks:
        if fks.is_weak(fk) and not fks.is_trivial(fk):
            return fk.target
    return None


def _pick_oo(query: ConjunctiveQuery, fks: ForeignKeySet,
             types: dict[ForeignKey, str]) -> ForeignKey | None:
    """An ``o→o`` key whose target has no outgoing keys (``q^FK_S = {S}``)."""
    candidates = [fk for fk, t in types.items() if t == "oo"]
    for fk in sorted(candidates, key=repr):
        if not fks.outgoing(fk.target):
            return fk
    if candidates:
        raise ForeignKeyError(
            "o→o foreign keys form a cycle among obedient atoms — "
            "contradicts Theorem 7 (I)"
        )
    return None


def _pick_empty_key(query: ConjunctiveQuery) -> str | None:
    """A relation whose atom has no key variables (Lemma 45 trigger)."""
    for atom in query.atoms:
        if not atom.key_variables:
            return atom.relation
    return None


def _build(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    fresh: FreshVariableFactory,
    steps: list[ReductionStep],
) -> Formula:
    """Rewrite ``CERTAINTY(q, FK)`` assuming the FO conditions hold.

    Parameters in *query* stay free in the result.
    """
    translators = []
    while len(fks) > 0:
        weak_target = _pick_weak_target(query, fks)
        if weak_target is not None:
            step = weak_removal_step(query, fks, weak_target)
        elif any(fks.is_trivial(fk) for fk in fks):
            step = trivial_removal_step(query, fks)
        else:
            types = {fk: fk_type(query, fks, fk) for fk in fks}
            oo = _pick_oo(query, fks, types)
            dd = next(
                (fk for fk in sorted(fks, key=repr) if types[fk] == "dd"),
                None,
            )
            if oo is not None:
                step = oo_removal_step(query, fks, oo, fresh)
            elif dd is not None:
                step = dd_removal_step(query, fks, dd)
            else:
                empty = _pick_empty_key(query)
                if empty is not None:
                    case = empty_key_case(query, fks, empty)
                    steps.append(
                        ReductionStep(
                            lemma="Lemma 45",
                            description=(
                                f"case split on the constant block of {empty}; "
                                f"remove {case.removed_relations}"
                            ),
                            removed_fks=tuple(
                                fk for fk in fks if fk not in case.inner_fks
                            ),
                            removed_atoms=case.removed_relations,
                            query_after=case.inner_query,
                            fks_after=case.inner_fks,
                            translate=_identity_translate_45,
                            transform_instance=None,
                        )
                    )
                    inner = _build(
                        case.inner_query, case.inner_fks, fresh, steps
                    )
                    formula = empty_key_formula(case, inner, fks, fresh)
                    for translate in reversed(translators):
                        formula = translate(formula)
                    return formula
                do = next(
                    (fk for fk in sorted(fks, key=repr) if types[fk] == "do"),
                    None,
                )
                if do is None:
                    raise ForeignKeyError(
                        f"no applicable reduction for {fks!r} — should be "
                        "unreachable"
                    )
                step = do_removal_step(query, fks, do, fresh)
        steps.append(step)
        translators.append(step.translate)
        query, fks = step.query_after, step.fks_after
    formula = rewrite_primary_keys(query, fresh)
    for translate in reversed(translators):
        formula = translate(formula)
    return formula


def consistent_rewriting(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    simplify_result: bool = True,
) -> RewritingResult:
    """Construct the consistent FO rewriting of ``CERTAINTY(q, FK)``.

    Raises :class:`NotInFOError` when Theorem 12 places the problem outside
    FO, and :class:`ForeignKeyError` when *fks* is not about *query*.
    """
    classification = classify(query, fks)
    if not classification.in_fo:
        raise NotInFOError(classification.explain())
    fresh = FreshVariableFactory(
        {v.name for v in query.variables}
        | {p.name for p in query.parameters}
    )
    closed = fks.implication_closure()
    steps: list[ReductionStep] = []
    formula = _build(query, closed, fresh, steps)
    if simplify_result:
        formula = simplify(formula)
    return RewritingResult(
        query=query,
        fks=fks,
        formula=formula,
        classification=classification,
        steps=steps,
    )
