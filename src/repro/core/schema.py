"""Relation signatures and database schemas.

Every relation name is associated with a *signature* ``[n, k]`` (Section 3):
``n`` is the arity and the first ``k`` positions form the primary key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..exceptions import SchemaError


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature ``[n, k]``: arity ``n``, primary key ``[k]`` with ``k ≤ n``."""

    arity: int
    key_size: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise SchemaError(f"arity must be positive, got {self.arity}")
        if not 1 <= self.key_size <= self.arity:
            raise SchemaError(
                f"key size must lie in [1, {self.arity}], got {self.key_size}"
            )

    @property
    def key_positions(self) -> range:
        """1-based primary-key positions ``1..k``."""
        return range(1, self.key_size + 1)

    @property
    def nonkey_positions(self) -> range:
        """1-based non-primary-key positions ``k+1..n``."""
        return range(self.key_size + 1, self.arity + 1)

    @property
    def is_all_key(self) -> bool:
        """True iff every position is part of the primary key."""
        return self.key_size == self.arity

    def __repr__(self) -> str:
        return f"[{self.arity},{self.key_size}]"


class Schema:
    """A finite map from relation names to signatures.

    The paper fixes a database schema up front; we thread an explicit
    ``Schema`` object through queries, instances and constraint sets so that
    all parties agree on the signatures.
    """

    def __init__(self, signatures: dict[str, Signature] | None = None):
        self._signatures: dict[str, Signature] = dict(signatures or {})

    @classmethod
    def of(cls, **relations: tuple[int, int]) -> "Schema":
        """Build a schema from ``name=(arity, key_size)`` keyword pairs.

        >>> Schema.of(R=(2, 1), S=(3, 2))["R"].arity
        2
        """
        return cls({name: Signature(*sig) for name, sig in relations.items()})

    def add(self, name: str, arity: int, key_size: int) -> "Schema":
        """Return a new schema extended with relation *name*."""
        if name in self._signatures:
            existing = self._signatures[name]
            if existing != Signature(arity, key_size):
                raise SchemaError(
                    f"relation {name!r} already declared with signature "
                    f"{existing}, cannot redeclare as [{arity},{key_size}]"
                )
            return self
        merged = dict(self._signatures)
        merged[name] = Signature(arity, key_size)
        return Schema(merged)

    def merge(self, other: "Schema") -> "Schema":
        """Union of two schemas; clashing signatures raise :class:`SchemaError`."""
        merged = dict(self._signatures)
        for name, sig in other._signatures.items():
            if name in merged and merged[name] != sig:
                raise SchemaError(
                    f"relation {name!r} has conflicting signatures "
                    f"{merged[name]} and {sig}"
                )
            merged[name] = sig
        return Schema(merged)

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Return the sub-schema on the given relation names."""
        keep = set(names)
        return Schema({n: s for n, s in self._signatures.items() if n in keep})

    def positions(self) -> list[tuple[str, int]]:
        """All positions ``(R, i)`` of the schema, 1-based."""
        return [
            (name, i)
            for name, sig in self._signatures.items()
            for i in range(1, sig.arity + 1)
        ]

    def __getitem__(self, name: str) -> Signature:
        try:
            return self._signatures[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def __iter__(self) -> Iterator[str]:
        return iter(self._signatures)

    def __len__(self) -> int:
        return len(self._signatures)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._signatures == other._signatures

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}{s}" for n, s in sorted(self._signatures.items()))
        return f"Schema({inner})"
