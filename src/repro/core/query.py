"""Self-join-free Boolean conjunctive queries (sjfBCQ).

A Boolean conjunctive query is a finite set of atoms (Section 3.1).  The
class :class:`ConjunctiveQuery` stores the atoms in a canonical order,
enforces self-join-freeness on request, and provides the derived notions
used throughout the paper: ``vars(q)``, ``const(q)``, substitution
``q[x→c]``, the per-relation atom lookup ("in contexts where a query q is
understood, a relation name stands for its unique atom"), variable
connectivity, and the restricted Gaifman graph ``G_V(q)`` of Definition 9.

A compact text syntax is provided for tests and examples::

    parse_query("R(x, y)", "S(y | z, 'c')")

* bare identifiers are variables,
* ``'quoted'`` tokens and integer literals are constants,
* ``$name`` tokens are parameters (frozen variables),
* the ``|`` separates primary-key positions from the rest; without a ``|``
  the key is the first position (signature ``[n, 1]``); a trailing ``|``
  makes every position part of the key (signature ``[n, n]``).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import QueryError
from .atoms import Atom
from .schema import Schema
from .terms import Constant, Parameter, Term, Variable, is_variable

_TOKEN = re.compile(r"\s*(\$?[A-Za-z_][A-Za-z0-9_]*|'[^']*'|-?\d+|\|)\s*")
_ATOM = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\((.*)\)\s*$", re.S)


def parse_term(token: str) -> Term:
    """Parse a single term token (see module docstring for the syntax)."""
    token = token.strip()
    if token.startswith("$"):
        return Parameter(token[1:])
    if token.startswith("'") and token.endswith("'"):
        return Constant(token[1:-1])
    if re.fullmatch(r"-?\d+", token):
        return Constant(int(token))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return Variable(token)
    raise QueryError(f"cannot parse term {token!r}")


def parse_atom(text: str) -> Atom:
    """Parse one atom, e.g. ``"R(x, 'c' | y)"``."""
    match = _ATOM.match(text)
    if not match:
        raise QueryError(f"cannot parse atom {text!r}")
    relation, body = match.group(1), match.group(2)
    tokens = [t.strip() for t in _split_args(body)]
    key_size: int | None = None
    terms: list[Term] = []
    for token in tokens:
        if token == "|":
            if key_size is not None:
                raise QueryError(f"two '|' separators in atom {text!r}")
            key_size = len(terms)
        elif token:
            terms.append(parse_term(token))
    if key_size is None:
        key_size = 1
    if key_size == 0:
        raise QueryError(f"empty primary key in atom {text!r}")
    return Atom(relation, tuple(terms), key_size)


def _split_args(body: str) -> Iterator[str]:
    """Split an atom body on commas and pipes, respecting quotes."""
    depth_quote = False
    current: list[str] = []
    for char in body:
        if char == "'":
            depth_quote = not depth_quote
            current.append(char)
        elif char == "," and not depth_quote:
            yield "".join(current)
            current = []
        elif char == "|" and not depth_quote:
            yield "".join(current)
            yield "|"
            current = []
        else:
            current.append(char)
    yield "".join(current)


class ConjunctiveQuery:
    """A Boolean conjunctive query, optionally checked self-join-free."""

    def __init__(self, atoms: Iterable[Atom], require_sjf: bool = True):
        self._atoms: tuple[Atom, ...] = tuple(atoms)
        if require_sjf:
            seen: set[str] = set()
            for atom in self._atoms:
                if atom.relation in seen:
                    raise QueryError(
                        f"query is not self-join-free: two {atom.relation}-atoms"
                    )
                seen.add(atom.relation)

    # -- basic structure ----------------------------------------------------

    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self._atoms

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(a.relation for a in self._atoms)

    def atom(self, relation: str) -> Atom:
        """The unique atom with the given relation name."""
        for atom in self._atoms:
            if atom.relation == relation:
                return atom
        raise QueryError(f"query has no {relation}-atom")

    def has_relation(self, relation: str) -> bool:
        return any(a.relation == relation for a in self._atoms)

    @property
    def variables(self) -> frozenset[Variable]:
        """``vars(q)``."""
        return frozenset(v for a in self._atoms for v in a.variables)

    @property
    def constants(self) -> frozenset[Constant]:
        """``const(q)``."""
        return frozenset(c for a in self._atoms for c in a.constants)

    @property
    def parameters(self) -> frozenset[Parameter]:
        return frozenset(p for a in self._atoms for p in a.parameters)

    def schema(self) -> Schema:
        """The schema induced by the query's atoms."""
        schema = Schema()
        for atom in self._atoms:
            schema = schema.add(atom.relation, atom.arity, atom.key_size)
        return schema

    # -- set-like operations --------------------------------------------------

    def without(self, *removed: Atom | str) -> "ConjunctiveQuery":
        """``q \\ {F}`` for atoms or relation names *removed*."""
        names = {r if isinstance(r, str) else r.relation for r in removed}
        return ConjunctiveQuery(
            (a for a in self._atoms if a.relation not in names), require_sjf=False
        )

    def with_atom(self, atom: Atom) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self._atoms + (atom,), require_sjf=False)

    def replace_atom(self, relation: str, new_atom: Atom) -> "ConjunctiveQuery":
        """Swap the unique *relation*-atom for *new_atom*."""
        if not self.has_relation(relation):
            raise QueryError(f"query has no {relation}-atom")
        return ConjunctiveQuery(
            tuple(new_atom if a.relation == relation else a for a in self._atoms),
            require_sjf=False,
        )

    def restrict(self, relations: Iterable[str]) -> "ConjunctiveQuery":
        """``q ↾ relations``."""
        keep = set(relations)
        return ConjunctiveQuery(
            (a for a in self._atoms if a.relation in keep), require_sjf=False
        )

    # -- substitution ---------------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """``q[x→c]`` extended to arbitrary variable maps."""
        return ConjunctiveQuery(
            (a.substitute(mapping) for a in self._atoms), require_sjf=False
        )

    def freeze(self, variables: Iterable[Variable]) -> "ConjunctiveQuery":
        """Replace each variable by a :class:`Parameter` of the same name."""
        mapping = {v: Parameter(v.name) for v in variables}
        return self.substitute(mapping)

    # -- connectivity ---------------------------------------------------------

    def gaifman_edges(
        self, restrict_to: frozenset[Variable] | None = None
    ) -> dict[Variable, set[Variable]]:
        """Adjacency of the Gaifman graph ``G_V(q)`` (Definition 9).

        Vertices are the variables of *restrict_to* (default: all variables);
        ``{x, y}`` is an edge iff some atom contains both (within the
        restriction).  Self-loops are implicit.
        """
        vertices = self.variables if restrict_to is None else restrict_to
        adjacency: dict[Variable, set[Variable]] = {v: set() for v in vertices}
        for atom in self._atoms:
            atom_vars = [v for v in atom.variables if v in vertices]
            for i, x in enumerate(atom_vars):
                for y in atom_vars[i + 1:]:
                    adjacency[x].add(y)
                    adjacency[y].add(x)
        return adjacency

    def connected(
        self,
        x: Variable,
        y: Variable,
        restrict_to: frozenset[Variable] | None = None,
    ) -> bool:
        """True iff *x* and *y* are connected in ``G_V(q)``.

        A variable is vacuously connected to itself (paths of length 0),
        provided it belongs to the vertex set.
        """
        vertices = self.variables if restrict_to is None else restrict_to
        if x not in vertices or y not in vertices:
            return False
        if x == y:
            return True
        adjacency = self.gaifman_edges(vertices)
        frontier, seen = [x], {x}
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour == y:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    # -- dunder ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._atoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return frozenset(self._atoms) == frozenset(other._atoms)

    def __hash__(self) -> int:
        return hash(frozenset(self._atoms))

    def __repr__(self) -> str:
        return "{" + ", ".join(map(repr, self._atoms)) + "}"


def parse_query(*atom_texts: str) -> ConjunctiveQuery:
    """Parse a self-join-free query from one atom string per argument."""
    return ConjunctiveQuery(parse_atom(t) for t in atom_texts)


def query_of(atoms: Sequence[Atom]) -> ConjunctiveQuery:
    """Build a query from already-constructed atoms (checked sjf)."""
    return ConjunctiveQuery(atoms)
