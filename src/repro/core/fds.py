"""Functional dependencies over query variables.

``K(q)`` (Section 3.1) is the set ``{key(F) → vars(F) | F ∈ q}`` of
functional dependencies over ``vars(q)``.  The attack graph and the set
``V`` of Definition 9 are defined through implication of such dependencies,
decided by the textbook attribute-set closure algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .query import ConjunctiveQuery
from .terms import Variable


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs → rhs`` over variables."""

    lhs: frozenset[Variable]
    rhs: frozenset[Variable]

    def __repr__(self) -> str:
        left = ",".join(sorted(v.name for v in self.lhs)) or "∅"
        right = ",".join(sorted(v.name for v in self.rhs)) or "∅"
        return f"{left} → {right}"


class FDSet:
    """A set of functional dependencies with implication via closure."""

    def __init__(self, fds: Iterable[FunctionalDependency]):
        self._fds = tuple(fds)

    @classmethod
    def of_query(cls, query: ConjunctiveQuery) -> "FDSet":
        """``K(q) = {key(F) → vars(F) | F ∈ q}``."""
        return cls(
            FunctionalDependency(atom.key_variables, atom.variables)
            for atom in query.atoms
        )

    @property
    def dependencies(self) -> tuple[FunctionalDependency, ...]:
        return self._fds

    def closure(self, attributes: Iterable[Variable]) -> frozenset[Variable]:
        """All variables functionally determined by *attributes*."""
        closed: set[Variable] = set(attributes)
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.lhs <= closed and not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
        return frozenset(closed)

    def implies(self, lhs: Iterable[Variable], rhs: Iterable[Variable]) -> bool:
        """``K ⊨ lhs → rhs``."""
        return frozenset(rhs) <= self.closure(lhs)

    def determines(self, variable: Variable) -> bool:
        """``K ⊨ ∅ → {variable}``: the variable has a forced value."""
        return variable in self.closure(())

    def constant_variables(self) -> frozenset[Variable]:
        """``{v | K ⊨ ∅ → v}`` — the set ``C`` of the Lemma 15 proof."""
        return self.closure(())

    def __repr__(self) -> str:
        return "K{" + "; ".join(map(repr, self._fds)) + "}"


def free_variables(query: ConjunctiveQuery) -> frozenset[Variable]:
    """``V = {v ∈ vars(q) | K(q) ̸⊨ ∅ → v}`` (Definition 9's vertex pool)."""
    fds = FDSet.of_query(query)
    forced = fds.constant_variables()
    return frozenset(v for v in query.variables if v not in forced)
