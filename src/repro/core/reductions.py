"""The foreign-key removal pipeline of Appendix E (Fig. 4).

``CERTAINTY(q, FK)`` with an acyclic attack graph and no block-interference
is reduced, foreign key by foreign key, to ``CERTAINTY(q'', ∅)``:

* **Lemma 36** — all weak foreign keys referencing one relation are removed;
  the instance reduction is the identity.
* **Lemma 37** — a strong ``o→o`` key ``R[i] → S`` whose target has no
  outgoing keys is removed together with the ``S``-atom; the instance keeps
  only the ``R``-blocks *relevant* for ``q^FK_R``.
* **Lemma 39** — a strong ``d→d`` key is simply dropped (identity
  reduction).
* **Lemma 45** — an atom ``N`` with ``key(N) = ∅`` triggers a case split
  over the facts of the constant block ``N(c⃗, ∗)``; the subquery
  ``q^FK_N`` is removed and ``N``'s variables are frozen to parameters.
* **Lemma 40** — a strong ``d→o`` key ``N[i] → O`` is removed together with
  the ``O``-atom; the instance keeps only the ``N``-blocks containing a
  fact that is not dangling with respect to ``FK[N→]``.

Each step is materialized twice, and the test suite checks the two agree:

* :meth:`ReductionStep.transform_instance` — the forward first-order
  reduction on database instances (Lemma 45 excepted: it is a case split,
  handled by the procedural decider in :mod:`repro.core.decision`);
* :meth:`ReductionStep.translate` — the backward formula transformation
  that turns a rewriting over the reduced schema into one over the original
  schema (relativization by relevance guards).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..db.constraints import dangling_keys_of
from ..db.instance import DatabaseInstance
from ..db.matching import relevant_blocks
from ..exceptions import ForeignKeyError, NotInFOError
from ..fo.formula import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    TrueFormula,
    conj,
    equality,
    exists,
    forall,
    implies,
)
from ..fo.substitute import substitute_terms
from .atoms import Atom
from .foreign_keys import ForeignKey, ForeignKeySet
from .obedience import atom_obedient, subquery_for_relation
from .query import ConjunctiveQuery
from .terms import (
    FreshVariableFactory,
    Parameter,
    Term,
    Variable,
    is_constantlike,
    is_variable,
)


# ---------------------------------------------------------------------------
# Foreign-key typing (Fig. 4)
# ---------------------------------------------------------------------------


def fk_type(query: ConjunctiveQuery, fks: ForeignKeySet, fk: ForeignKey) -> str:
    """The Fig. 4 type of *fk*: ``"weak"``, ``"oo"``, ``"dd"``, ``"do"``.

    The impossible strong type ``o→d`` raises (its absence is a theorem;
    the assertion guards the implementation).
    """
    if fks.is_weak(fk):
        return "weak"
    source_obedient = atom_obedient(query, fks, fk.source)
    target_obedient = atom_obedient(query, fks, fk.target)
    if source_obedient and target_obedient:
        return "oo"
    if not source_obedient and not target_obedient:
        return "dd"
    if not source_obedient and target_obedient:
        return "do"
    raise ForeignKeyError(
        f"{fk!r} has impossible type o→d (obedient source, disobedient "
        "target) — this contradicts Section 8 of the paper"
    )


# ---------------------------------------------------------------------------
# Step records
# ---------------------------------------------------------------------------


@dataclass
class ReductionStep:
    """One fired reduction, with both realizations.

    ``translate`` maps a formula over the *reduced* schema to one over this
    step's input schema.  ``transform_instance`` maps an input instance to a
    reduced instance (``None`` for the Lemma 45 case split).
    """

    lemma: str
    description: str
    removed_fks: tuple[ForeignKey, ...]
    removed_atoms: tuple[str, ...]
    query_after: ConjunctiveQuery
    fks_after: ForeignKeySet
    translate: Callable[[Formula], Formula]
    transform_instance: Callable[
        [DatabaseInstance, Mapping[Parameter, object]], DatabaseInstance
    ] | None

    def __repr__(self) -> str:
        return f"<{self.lemma}: {self.description}>"


def _identity_translate(formula: Formula) -> Formula:
    return formula


def _identity_transform(
    db: DatabaseInstance, env: Mapping[Parameter, object]
) -> DatabaseInstance:
    return db


# ---------------------------------------------------------------------------
# Relativization helpers
# ---------------------------------------------------------------------------


def _wrap_relation(
    formula: Formula,
    relation: str,
    guard: Callable[[tuple[Term, ...]], Formula],
) -> Formula:
    """Conjoin ``guard(terms)`` to every ``relation``-atom of *formula*."""
    if isinstance(formula, Rel):
        if formula.relation == relation:
            return And((formula, guard(formula.terms)))
        return formula
    if isinstance(formula, (TrueFormula, FalseFormula, Eq)):
        return formula
    if isinstance(formula, Not):
        return Not(_wrap_relation(formula.body, relation, guard))
    if isinstance(formula, And):
        return And(
            tuple(_wrap_relation(p, relation, guard) for p in formula.parts)
        )
    if isinstance(formula, Or):
        return Or(
            tuple(_wrap_relation(p, relation, guard) for p in formula.parts)
        )
    if isinstance(formula, Implies):
        return Implies(
            _wrap_relation(formula.premise, relation, guard),
            _wrap_relation(formula.conclusion, relation, guard),
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variables,
            _wrap_relation(formula.body, relation, guard),
        )
    if isinstance(formula, Forall):
        return Forall(
            formula.variables,
            _wrap_relation(formula.body, relation, guard),
        )
    raise NotInFOError(f"unknown formula node {formula!r}")


def _atom_to_rel(atom: Atom) -> Rel:
    return Rel(atom.relation, atom.terms, atom.key_size)


def _embedding_formula(
    subquery: ConjunctiveQuery,
    anchor: str,
    anchor_key_terms: tuple[Term, ...],
    fresh: FreshVariableFactory,
) -> Formula:
    """``∃… ⋀ subquery`` with the *anchor* atom's key equated to the given
    terms — the "this block is relevant for *subquery*" guard of Lemma 37.
    """
    renaming = {v: fresh.fresh(f"g_{v.name}") for v in subquery.variables}
    renamed = subquery.substitute(renaming)
    anchor_atom = renamed.atom(anchor)
    equalities: list[Formula] = []
    binding: dict[Term, Term] = {}
    for term, actual in zip(anchor_atom.key_terms, anchor_key_terms):
        if is_variable(term) and term not in binding:
            binding[term] = actual
        else:
            resolved = binding.get(term, term)
            equalities.append(equality(resolved, actual))
    atoms = [
        substitute_terms(_atom_to_rel(a), binding) for a in renamed.atoms
    ]
    bound_vars = [
        v for v in renaming.values() if v not in binding
    ]
    return exists(bound_vars, conj(list(atoms) + equalities))


def _nondangling_formula(
    atom: Atom,
    value_terms: tuple[Term, ...],
    outgoing: list[ForeignKey],
    schema_lookup: ForeignKeySet,
    fresh: FreshVariableFactory,
) -> Formula:
    """``⋀_{N[i]→O} ∃z⃗ O(value_i, z⃗)`` for a fact pattern of *atom*."""
    parts: list[Formula] = []
    for fk in outgoing:
        target_sig = schema_lookup.schema[fk.target]
        z_vars = [fresh.fresh("z") for _ in range(target_sig.arity - 1)]
        referenced = value_terms[fk.position - 1]
        parts.append(
            exists(
                z_vars,
                Rel(
                    fk.target,
                    (referenced, *z_vars),
                    target_sig.key_size,
                ),
            )
        )
    return conj(parts)


# ---------------------------------------------------------------------------
# Individual steps
# ---------------------------------------------------------------------------


def weak_removal_step(
    query: ConjunctiveQuery, fks: ForeignKeySet, target: str
) -> ReductionStep:
    """Lemma 36: drop ``FK_weak[→ target]``; identity reduction."""
    removed = tuple(
        fk for fk in fks.referencing(target) if fks.is_weak(fk)
    )
    fks_after = fks.without(*removed)
    return ReductionStep(
        lemma="Lemma 36",
        description=f"remove weak foreign keys referencing {target}",
        removed_fks=removed,
        removed_atoms=(),
        query_after=query,
        fks_after=fks_after,
        translate=_identity_translate,
        transform_instance=_identity_transform,
    )


def trivial_removal_step(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> ReductionStep:
    """Drop the unfalsifiable keys ``R[1] → R``; trivially sound."""
    removed = tuple(fk for fk in fks if fks.is_trivial(fk))
    return ReductionStep(
        lemma="triviality",
        description="remove trivial foreign keys R[1]→R",
        removed_fks=removed,
        removed_atoms=(),
        query_after=query,
        fks_after=fks.without(*removed),
        translate=_identity_translate,
        transform_instance=_identity_transform,
    )


def oo_removal_step(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    fk: ForeignKey,
    fresh: FreshVariableFactory,
) -> ReductionStep:
    """Lemma 37: remove a strong ``o→o`` key and its target atom."""
    source = fk.source
    relevance_query = subquery_for_relation(query, fks, source)
    query_after = query.without(fk.target)
    fks_after = fks.without(fk)
    source_atom = query.atom(source)
    key_size = source_atom.key_size

    def guard(terms: tuple[Term, ...]) -> Formula:
        return _embedding_formula(
            relevance_query, source, terms[:key_size], fresh
        )

    def translate(formula: Formula) -> Formula:
        return _wrap_relation(formula, source, guard)

    def transform(
        db: DatabaseInstance, env: Mapping[Parameter, object]
    ) -> DatabaseInstance:
        kept_blocks = relevant_blocks(relevance_query, db, source, env=env)

        def keep(fact) -> bool:
            if fact.relation == fk.target:
                return False
            if fact.relation == source:
                return fact.block_id in kept_blocks
            return True

        return db.filter(keep).restrict_relations(query_after.relations)

    return ReductionStep(
        lemma="Lemma 37",
        description=f"remove o→o key {fk!r} and atom {fk.target}",
        removed_fks=(fk,),
        removed_atoms=(fk.target,),
        query_after=query_after,
        fks_after=fks_after.restrict_to_query(query_after),
        translate=translate,
        transform_instance=transform,
    )


def dd_removal_step(
    query: ConjunctiveQuery, fks: ForeignKeySet, fk: ForeignKey
) -> ReductionStep:
    """Lemma 39: remove a strong ``d→d`` key; identity reduction."""
    return ReductionStep(
        lemma="Lemma 39",
        description=f"remove d→d key {fk!r}",
        removed_fks=(fk,),
        removed_atoms=(),
        query_after=query,
        fks_after=fks.without(fk),
        translate=_identity_translate,
        transform_instance=_identity_transform,
    )


def do_removal_step(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    fk: ForeignKey,
    fresh: FreshVariableFactory,
) -> ReductionStep:
    """Lemma 40: remove a strong ``d→o`` key and its target atom."""
    source = fk.source
    outgoing = sorted(fks.outgoing(source), key=repr)
    source_atom = query.atom(source)
    key_size = source_atom.key_size
    arity = source_atom.arity
    query_after = query.without(fk.target)
    fks_after = fks.without(fk).restrict_to_query(query_after)

    def guard(terms: tuple[Term, ...]) -> Formula:
        b_vars = [fresh.fresh("b") for _ in range(arity - key_size)]
        pattern = tuple(terms[:key_size]) + tuple(b_vars)
        body = conj(
            [Rel(source, pattern, key_size)]
            + [
                _nondangling_formula(
                    source_atom, pattern, [g], fks, fresh
                )
                for g in outgoing
            ]
        )
        return exists(b_vars, body)

    def translate(formula: Formula) -> Formula:
        return _wrap_relation(formula, source, guard)

    def transform(
        db: DatabaseInstance, env: Mapping[Parameter, object]
    ) -> DatabaseInstance:
        good_blocks = {
            fact.block_id
            for fact in db.relation_facts(source)
            if not any(
                dangling_keys_of(fact, fks, db)
            )
        }

        def keep(fact) -> bool:
            if fact.relation == fk.target:
                return False
            if fact.relation == source:
                return fact.block_id in good_blocks
            return True

        return db.filter(keep).restrict_relations(query_after.relations)

    return ReductionStep(
        lemma="Lemma 40",
        description=f"remove d→o key {fk!r} and atom {fk.target}",
        removed_fks=(fk,),
        removed_atoms=(fk.target,),
        query_after=query_after,
        fks_after=fks_after,
        translate=translate,
        transform_instance=transform,
    )


@dataclass
class EmptyKeyCase:
    """The Lemma 45 case split: everything the driver needs to recurse."""

    atom: Atom
    removed_relations: tuple[str, ...]
    inner_query: ConjunctiveQuery
    inner_fks: ForeignKeySet
    frozen: dict[Variable, Parameter]
    outgoing: tuple[ForeignKey, ...]


def empty_key_case(
    query: ConjunctiveQuery, fks: ForeignKeySet, relation: str
) -> EmptyKeyCase:
    """Prepare the Lemma 45 split for the empty-key atom of *relation*."""
    atom = query.atom(relation)
    if atom.key_variables:
        raise ForeignKeyError(f"{relation}-atom has key variables")
    removal = subquery_for_relation(query, fks, relation).relations | {relation}
    inner_query = query.without(*removal)
    frozen = {v: Parameter(v.name) for v in atom.variables}
    inner_query = inner_query.substitute(frozen)
    inner_fks = fks.restrict_to_query(inner_query)
    outgoing = tuple(sorted(fks.outgoing(relation), key=repr))
    return EmptyKeyCase(
        atom=atom,
        removed_relations=tuple(sorted(removal)),
        inner_query=inner_query,
        inner_fks=inner_fks,
        frozen=frozen,
        outgoing=outgoing,
    )


def empty_key_formula(
    case: EmptyKeyCase,
    inner_formula: Formula,
    fks: ForeignKeySet,
    fresh: FreshVariableFactory,
) -> Formula:
    """Assemble the Lemma 45 formula around a rewriting of the inner problem.

    ``∃b⃗ (N(c⃗, b⃗) ∧ nondangling(b⃗)) ∧ ∀d⃗ (N(c⃗, d⃗) → match(d⃗) ∧ φ_inner[x⃗→d⃗])``
    """
    atom = case.atom
    key_terms = atom.key_terms
    arity_rest = atom.arity - atom.key_size
    # Witness: some block fact that is not dangling w.r.t. FK[N→].
    b_vars = [fresh.fresh("b") for _ in range(arity_rest)]
    witness_pattern = tuple(key_terms) + tuple(b_vars)
    witness = exists(
        b_vars,
        conj(
            [Rel(atom.relation, witness_pattern, atom.key_size)]
            + [
                _nondangling_formula(
                    atom, witness_pattern, [g], fks, fresh
                )
                for g in case.outgoing
            ]
        ),
    )
    # Case split: every block fact must match the pattern and make the inner
    # problem certain.
    d_vars = [fresh.fresh("d") for _ in range(arity_rest)]
    matches: list[Formula] = []
    binder: dict[Term, Term] = {}
    for d_var, term in zip(d_vars, atom.nonkey_terms):
        if is_variable(term):
            parameter = case.frozen[term]
            if parameter in binder:
                matches.append(equality(d_var, binder[parameter]))
            else:
                binder[parameter] = d_var
        else:
            matches.append(equality(d_var, term))
    bound_inner = substitute_terms(inner_formula, binder)
    split = forall(
        d_vars,
        implies(
            Rel(atom.relation, tuple(key_terms) + tuple(d_vars), atom.key_size),
            conj(matches + [bound_inner]),
        ),
    )
    return conj([witness, split])
