"""Unary foreign keys, dependency graphs and position closures.

Implements Section 3.2: a foreign key is an expression ``R[i] → S`` where
``S`` has signature ``[m, 1]``; it is *weak* if ``i ≤ k`` (the key size of
``R``) and *strong* otherwise.  The *dependency graph* of a set ``FK`` has a
vertex for every position of every relation occurring in ``FK`` and, for
each ``R[i] → S``, edges from ``(R, i)`` to every position ``(S, j)``;
edges into ``j ≠ 1`` are *special*.  ``P_FK`` is the forward closure of a
position set ``P`` in this graph; the complement is taken with respect to
all positions of the schema under consideration.

``FK*`` — the set of foreign keys logically implied by ``FK`` — is computed
by the complete axiomatization of unary inclusion dependencies
(Casanova–Fagin–Papadimitriou): reflexivity (the *trivial* keys ``R[1] → R``
for relations with key size 1) and transitivity through referenced primary
keys (``R[i] → S`` and ``S[1] → T`` yield ``R[i] → T``).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..exceptions import ForeignKeyError
from .query import ConjunctiveQuery
from .schema import Schema

Position = tuple[str, int]


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """``source[position] → target`` with 1-based *position*."""

    source: str
    position: int
    target: str

    def __repr__(self) -> str:
        return f"{self.source}[{self.position}]->{self.target}"

    @property
    def source_position(self) -> Position:
        return (self.source, self.position)


class ForeignKeySet:
    """A set of unary foreign keys over a schema.

    The schema must cover every relation mentioned by a foreign key; it may
    contain further relations (those of the query), which matters for the
    complement ``P^co_FK`` of a position closure.
    """

    def __init__(self, fks: Iterable[ForeignKey], schema: Schema):
        self._fks = frozenset(fks)
        self._schema = schema
        for fk in self._fks:
            self._validate(fk)
        self._edges: dict[Position, set[Position]] | None = None

    def _validate(self, fk: ForeignKey) -> None:
        if fk.source not in self._schema:
            raise ForeignKeyError(f"{fk}: unknown source relation {fk.source!r}")
        if fk.target not in self._schema:
            raise ForeignKeyError(f"{fk}: unknown target relation {fk.target!r}")
        source_sig = self._schema[fk.source]
        target_sig = self._schema[fk.target]
        if not 1 <= fk.position <= source_sig.arity:
            raise ForeignKeyError(
                f"{fk}: position outside [1, {source_sig.arity}]"
            )
        if target_sig.key_size != 1:
            raise ForeignKeyError(
                f"{fk}: referenced relation must have signature [m, 1], "
                f"got {target_sig}"
            )

    # -- basic access ----------------------------------------------------------

    @property
    def foreign_keys(self) -> frozenset[ForeignKey]:
        return self._fks

    @property
    def schema(self) -> Schema:
        return self._schema

    def is_weak(self, fk: ForeignKey) -> bool:
        """``R[i] → S`` is weak iff ``i ≤ k`` for ``R`` of signature ``[n, k]``."""
        return fk.position <= self._schema[fk.source].key_size

    def is_strong(self, fk: ForeignKey) -> bool:
        return not self.is_weak(fk)

    def is_trivial(self, fk: ForeignKey) -> bool:
        """``R[1] → R`` for ``R`` of signature ``[n, 1]`` cannot be falsified."""
        return (
            fk.source == fk.target
            and fk.position == 1
            and self._schema[fk.source].key_size == 1
        )

    def weak_keys(self) -> frozenset[ForeignKey]:
        return frozenset(fk for fk in self._fks if self.is_weak(fk))

    def strong_keys(self) -> frozenset[ForeignKey]:
        return frozenset(fk for fk in self._fks if self.is_strong(fk))

    def outgoing(self, relation: str) -> frozenset[ForeignKey]:
        """``FK[R →]``: foreign keys outgoing from *relation*."""
        return frozenset(fk for fk in self._fks if fk.source == relation)

    def referencing(self, relation: str) -> frozenset[ForeignKey]:
        """``FK[→ R]``: foreign keys referencing *relation*."""
        return frozenset(fk for fk in self._fks if fk.target == relation)

    # -- derived sets --------------------------------------------------------------

    def without(self, *removed: ForeignKey) -> "ForeignKeySet":
        return ForeignKeySet(self._fks - set(removed), self._schema)

    def restrict_to_query(self, query: ConjunctiveQuery) -> "ForeignKeySet":
        """``FK ↾ q``: keys whose relations all occur in *query*."""
        names = query.relations
        kept = {
            fk for fk in self._fks if fk.source in names and fk.target in names
        }
        return ForeignKeySet(kept, self._schema)

    def with_schema(self, schema: Schema) -> "ForeignKeySet":
        return ForeignKeySet(self._fks, schema)

    def implication_closure(self) -> "ForeignKeySet":
        """``FK*``: all implied foreign keys over the schema's relations.

        Reflexivity contributes ``R[1] → R`` for every relation of key size 1
        occurring in the schema; transitivity saturates through referenced
        primary keys.
        """
        closure: set[ForeignKey] = set(self._fks)
        for relation in self._schema:
            if self._schema[relation].key_size == 1:
                closure.add(ForeignKey(relation, 1, relation))
        changed = True
        while changed:
            changed = False
            by_source_pos1: dict[str, set[str]] = defaultdict(set)
            for fk in closure:
                if fk.position == 1:
                    by_source_pos1[fk.source].add(fk.target)
            new: set[ForeignKey] = set()
            for fk in closure:
                for target in by_source_pos1.get(fk.target, ()):
                    candidate = ForeignKey(fk.source, fk.position, target)
                    if candidate not in closure:
                        new.add(candidate)
            if new:
                closure |= new
                changed = True
        return ForeignKeySet(closure, self._schema)

    # -- dependency graph ---------------------------------------------------------------

    def dependency_edges(self) -> dict[Position, set[Position]]:
        """Adjacency of the dependency graph (Section 3.2)."""
        if self._edges is None:
            edges: dict[Position, set[Position]] = defaultdict(set)
            for fk in self._fks:
                target_arity = self._schema[fk.target].arity
                for j in range(1, target_arity + 1):
                    edges[fk.source_position].add((fk.target, j))
            self._edges = edges
        return self._edges

    def closure(self, positions: Iterable[Position]) -> frozenset[Position]:
        """``P_FK``: forward closure of *positions* (paths of length ≥ 0)."""
        edges = self.dependency_edges()
        seen: set[Position] = set(positions)
        frontier = deque(seen)
        while frontier:
            current = frontier.popleft()
            for neighbour in edges.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return frozenset(seen)

    def complement(self, positions: Iterable[Position]) -> frozenset[Position]:
        """``P^co_FK``: schema positions outside the closure of *positions*."""
        closed = self.closure(positions)
        return frozenset(p for p in self._schema.positions() if p not in closed)

    def position_on_cycle(self, position: Position) -> bool:
        """True iff *position* lies on a cycle of the dependency graph.

        Implemented as: some strict successor of *position* reaches it back.
        """
        edges = self.dependency_edges()
        if position not in edges and all(
            position not in succ for succ in edges.values()
        ):
            return False
        frontier = deque(edges.get(position, ()))
        seen: set[Position] = set(frontier)
        while frontier:
            current = frontier.popleft()
            if current == position:
                return True
            for neighbour in edges.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    # -- relationship with a query ----------------------------------------------------------

    def satisfied_by_query(self, query: ConjunctiveQuery) -> bool:
        """Is every key satisfied by *query* viewed as a database instance?

        Distinct variables are treated as distinct constants: the unique
        ``R``-atom's term at position ``i`` must literally equal the unique
        ``S``-atom's term at position 1.
        """
        for fk in self._fks:
            if not query.has_relation(fk.source):
                continue
            source_atom = query.atom(fk.source)
            if not query.has_relation(fk.target):
                return False
            target_atom = query.atom(fk.target)
            if source_atom.term_at(fk.position) != target_atom.term_at(1):
                return False
        return True

    def is_about(self, query: ConjunctiveQuery) -> bool:
        """``FK`` is *about* ``q``: satisfied by ``q`` and every relation of
        ``FK`` occurs in ``q`` (Section 3.2)."""
        names = query.relations
        for fk in self._fks:
            if fk.source not in names or fk.target not in names:
                return False
        return self.satisfied_by_query(query)

    def require_about(self, query: ConjunctiveQuery) -> None:
        """Raise :class:`ForeignKeyError` unless the set is about *query*."""
        if not self.is_about(query):
            raise ForeignKeyError(
                f"foreign keys {sorted(map(repr, self._fks))} are not about "
                f"the query {query!r}"
            )

    # -- dunder -------------------------------------------------------------------------------

    def __iter__(self) -> Iterator[ForeignKey]:
        return iter(sorted(self._fks, key=repr))

    def __len__(self) -> int:
        return len(self._fks)

    def __contains__(self, fk: ForeignKey) -> bool:
        return fk in self._fks

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForeignKeySet):
            return NotImplemented
        return self._fks == other._fks and self._schema == other._schema

    def __repr__(self) -> str:
        return "FK{" + ", ".join(map(repr, self)) + "}"


def parse_foreign_key(text: str) -> ForeignKey:
    """Parse ``"R[2]->S"`` into a :class:`ForeignKey`."""
    import re

    match = re.fullmatch(
        r"\s*([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]\s*->\s*([A-Za-z_]\w*)\s*", text
    )
    if not match:
        raise ForeignKeyError(f"cannot parse foreign key {text!r}")
    return ForeignKey(match.group(1), int(match.group(2)), match.group(3))


def fk_set(query: ConjunctiveQuery, *texts: str,
           extra_schema: Schema | None = None) -> ForeignKeySet:
    """Build a :class:`ForeignKeySet` over *query*'s schema from text keys."""
    schema = query.schema()
    if extra_schema is not None:
        schema = schema.merge(extra_schema)
    return ForeignKeySet([parse_foreign_key(t) for t in texts], schema)
