"""The attack graph of Koutris and Wijsen.

For a query ``q`` in sjfBCQ and ``F ∈ q`` (Section 3.1):

* ``F^{+,q} = {x ∈ vars(q) | K(q \\ {F}) ⊨ key(F) → x}``;
* ``F`` *attacks* ``G`` (written ``F ⇝ G``) iff ``F ≠ G`` and there is a
  sequence of variables, all outside ``F^{+,q}``, starting in ``vars(F)``,
  ending in ``vars(G)``, adjacent ones co-occurring in an atom of ``q``;
* ``F`` attacks every variable on such a sequence.

Theorem 2: acyclic attack graph ⟺ ``CERTAINTY(q)`` ∈ FO (else L-hard).
Koutris–Wijsen also show that a cyclic attack graph always contains a cycle
of length two; :func:`two_cycle` exposes one, which the L-hardness gadget of
Lemma 14 needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .atoms import Atom
from .fds import FDSet
from .query import ConjunctiveQuery
from .terms import Variable


@dataclass(frozen=True)
class Attack:
    """A directed attack ``source ⇝ target``."""

    source: Atom
    target: Atom

    def __repr__(self) -> str:
        return f"{self.source!r} ⇝ {self.target!r}"


class AttackGraph:
    """The attack graph of a self-join-free Boolean conjunctive query."""

    def __init__(self, query: ConjunctiveQuery):
        self._query = query
        self._plus: dict[str, frozenset[Variable]] = {}
        self._edges: dict[str, set[str]] = {}
        for atom in query.atoms:
            self._plus[atom.relation] = self._compute_plus(atom)
        for atom in query.atoms:
            self._edges[atom.relation] = {
                other.relation
                for other in query.atoms
                if other.relation != atom.relation and self._attacks(atom, other)
            }

    def _compute_plus(self, atom: Atom) -> frozenset[Variable]:
        """``F^{+,q}``: variables determined by ``key(F)`` via ``K(q \\ {F})``."""
        rest = self._query.without(atom.relation)
        fds = FDSet.of_query(rest)
        return fds.closure(atom.key_variables)

    def _reachable(self, atom: Atom) -> frozenset[Variable]:
        """Variables attacked by *atom*: connected to ``vars(F) \\ F^+`` in the
        Gaifman graph restricted to ``vars(q) \\ F^{+,q}``."""
        plus = self._plus[atom.relation]
        allowed = frozenset(v for v in self._query.variables if v not in plus)
        sources = [v for v in atom.variables if v in allowed]
        if not sources:
            return frozenset()
        adjacency = self._query.gaifman_edges(allowed)
        seen: set[Variable] = set(sources)
        frontier = list(sources)
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return frozenset(seen)

    def _attacks(self, source: Atom, target: Atom) -> bool:
        return bool(self._reachable(source) & target.variables)

    # -- public API -------------------------------------------------------------

    @property
    def query(self) -> ConjunctiveQuery:
        return self._query

    def plus(self, relation: str) -> frozenset[Variable]:
        """``F^{+,q}`` for the atom of *relation*."""
        return self._plus[relation]

    def attacks(self, source: str, target: str) -> bool:
        """Does the *source*-atom attack the *target*-atom?"""
        return target in self._edges.get(source, ())

    def attacks_variable(self, source: str, variable: Variable) -> bool:
        """Does the *source*-atom attack *variable*?"""
        return variable in self._reachable(self._query.atom(source))

    def edges(self) -> list[Attack]:
        return [
            Attack(self._query.atom(src), self._query.atom(dst))
            for src, targets in sorted(self._edges.items())
            for dst in sorted(targets)
        ]

    def is_acyclic(self) -> bool:
        """No directed cycle (depth-first three-colouring)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        colour = {relation: WHITE for relation in self._edges}

        def visit(node: str) -> bool:
            colour[node] = GRAY
            for succ in self._edges[node]:
                if colour[succ] == GRAY:
                    return False
                if colour[succ] == WHITE and not visit(succ):
                    return False
            colour[node] = BLACK
            return True

        return all(
            visit(node) for node in self._edges if colour[node] == WHITE
        )

    def two_cycle(self) -> tuple[Atom, Atom] | None:
        """Atoms ``F, G`` with ``F ⇝ G ⇝ F``, if any.

        By [Koutris–Wijsen, Lemma 3.6] a cyclic attack graph always contains
        such a pair, so ``two_cycle() is None ⟺ is_acyclic()`` — an identity
        the test suite checks on random queries.
        """
        for source, targets in sorted(self._edges.items()):
            for target in sorted(targets):
                if source in self._edges.get(target, ()):
                    return (self._query.atom(source), self._query.atom(target))
        return None

    def is_weak_attack(self, source: str, target: str) -> bool:
        """Is the attack ``F ⇝ G`` weak, i.e. ``K(q) ⊨ key(F) → key(G)``?

        Attack strength drives the Koutris–Wijsen trichotomy for
        ``CERTAINTY(q)`` (the paper's Section 2): a cycle whose attacks are
        all weak gives L-completeness, a 2-cycle of strong attacks gives
        coNP-completeness.
        """
        if not self.attacks(source, target):
            raise ValueError(f"{source} does not attack {target}")
        fds = FDSet.of_query(self._query)
        return fds.implies(
            self._query.atom(source).key_variables,
            self._query.atom(target).key_variables,
        )

    def strong_two_cycle(self) -> tuple[Atom, Atom] | None:
        """Atoms ``F, G`` attacking each other strongly, if any."""
        for source, targets in sorted(self._edges.items()):
            for target in sorted(targets):
                if source in self._edges.get(target, ()):
                    if not self.is_weak_attack(
                        source, target
                    ) and not self.is_weak_attack(target, source):
                        return (
                            self._query.atom(source),
                            self._query.atom(target),
                        )
        return None

    def unattacked_atoms(self) -> list[Atom]:
        """Atoms with in-degree zero (candidates for the rewriting step)."""
        attacked = {dst for targets in self._edges.values() for dst in targets}
        return [a for a in self._query.atoms if a.relation not in attacked]

    def topological_order(self) -> list[Atom] | None:
        """A topological order of the atoms, or ``None`` if cyclic."""
        indegree: dict[str, int] = {r: 0 for r in self._edges}
        for targets in self._edges.values():
            for dst in targets:
                indegree[dst] += 1
        queue = sorted(r for r, d in indegree.items() if d == 0)
        order: list[str] = []
        while queue:
            node = queue.pop(0)
            order.append(node)
            for succ in sorted(self._edges[node]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
            queue.sort()
        if len(order) != len(self._edges):
            return None
        return [self._query.atom(r) for r in order]

    def __repr__(self) -> str:
        parts = [
            f"{src}⇝{dst}"
            for src, targets in sorted(self._edges.items())
            for dst in sorted(targets)
        ]
        return "AttackGraph{" + ", ".join(parts) + "}"
