"""Terms: variables, constants and parameters.

The paper (Section 3) assumes denumerable sets of *variables* and
*constants*; a *term* is either of the two.  We add a third kind,
:class:`Parameter`, used internally by the rewriting pipeline (Appendix E,
Lemma 45): a parameter is a term that behaves exactly like a constant for
every syntactic notion of the paper (obedience, attacks, block-interference)
but is rendered as a *free variable* in the constructed first-order
rewriting.  Freezing a variable into a parameter is how the pipeline
implements substitutions such as ``q0[x -> theta(x)]`` without committing to
a concrete value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant.  Values are ordinary hashable Python objects."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Parameter:
    """A frozen variable: a constant-like term standing for an unknown value.

    Parameters arise when the rewriting pipeline substitutes the non-key
    values of a block for the variables of a query (Lemma 45).  Every
    classification routine treats a parameter as a constant; the formula
    builder turns it back into a free first-order variable.
    """

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"

    def __str__(self) -> str:
        return f"${self.name}"


Term = Union[Variable, Constant, Parameter]


def is_variable(term: Term) -> bool:
    """Return ``True`` iff *term* is a genuine (unfrozen) variable."""
    return isinstance(term, Variable)


def is_constantlike(term: Term) -> bool:
    """Return ``True`` iff *term* acts as a constant (constant or parameter).

    The paper's phrase "when distinct variables are treated as distinct
    constants" is implemented by this predicate together with term equality.
    """
    return isinstance(term, (Constant, Parameter))


class FreshVariableFactory:
    """Produce variables guaranteed not to clash with a reserved set of names.

    The rewriting construction needs a stream of fresh variables (for the
    universally quantified copies of non-key positions, Lemma 45 parameters,
    obedience tests, ...).  One factory is threaded through a construction so
    that freshness is global to it.
    """

    def __init__(self, reserved: set[str] | None = None, prefix: str = "v"):
        self._reserved = set(reserved or ())
        self._prefix = prefix
        self._counter = itertools.count()

    def reserve(self, names: set[str]) -> None:
        """Add *names* to the set this factory will never emit."""
        self._reserved.update(names)

    def fresh(self, hint: str | None = None) -> Variable:
        """Return a new :class:`Variable` whose name was never emitted."""
        base = hint or self._prefix
        while True:
            name = f"{base}_{next(self._counter)}"
            if name not in self._reserved:
                self._reserved.add(name)
                return Variable(name)

    def fresh_parameter(self, hint: str | None = None) -> Parameter:
        """Return a new :class:`Parameter` with a never-emitted name."""
        return Parameter(self.fresh(hint).name)


class FreshConstantFactory:
    """Produce constants outside a given active domain.

    Used by the chase (Appendix B) and the ⊕-repair oracle, which must invent
    values that do not occur in the database or the query.  Fresh constants
    are tagged with a private class so that tests can recognize them.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self, hint: str = "u") -> Constant:
        return Constant(FreshValue(hint, next(self._counter)))


@dataclass(frozen=True, slots=True)
class FreshValue:
    """The value payload of an invented constant.

    Distinct instances compare unequal to every ordinary value, which is what
    makes them "fresh" with respect to any active domain built from ordinary
    Python values.
    """

    hint: str
    serial: int

    def __repr__(self) -> str:
        return f"<{self.hint}#{self.serial}>"

    def __str__(self) -> str:
        return f"<{self.hint}#{self.serial}>"
