"""``repro.store``: server-side named instances, deltas, incremental decides.

The serving stack's answer to mutation-heavy workloads: clients ``put`` an
instance once under a chosen *ref*, ``patch`` it with small
:class:`Delta`\\ s, and issue decides *by reference* — the server keeps the
instance (bounded, versioned, byte-accounted: :class:`InstanceRegistry`)
and, per ``(plan, ref)``, backend-native incremental state that absorbs
the delta chain instead of re-deciding from scratch
(:class:`InstanceStore`).  See ``docs/protocol.md`` for the wire verbs and
``docs/architecture.md`` for where the registry sits in the data flow.
"""

from .delta import Delta
from .incremental import InstanceStore
from .registry import (
    InstanceRegistry,
    StoredInstance,
    estimate_fact_bytes,
    estimate_instance_bytes,
)

__all__ = [
    "Delta",
    "InstanceRegistry",
    "InstanceStore",
    "StoredInstance",
    "estimate_fact_bytes",
    "estimate_instance_bytes",
]
