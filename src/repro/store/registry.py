"""The named-instance registry: bounded, versioned, byte-accounted.

An :class:`InstanceRegistry` maps client-chosen instance *refs* (names) to
:class:`~repro.db.DatabaseInstance` values plus a monotonically increasing
integer *version*.  ``put`` installs a whole instance (version 1, or an
explicitly seeded version during fleet migration); ``patch`` applies a
:class:`~repro.store.Delta` and bumps the version.  Every entry keeps a
bounded log of recent deltas keyed by the version they produced, which is
what lets :mod:`repro.store.incremental` catch a cached per-plan state up
from version *v* to the current version without replaying the whole
instance.

The registry is bounded in *bytes*, not entries: each entry carries an
estimate of its fact payload, and whenever the total exceeds ``max_bytes``
the least-recently-used entries are evicted (the entry just touched is never
evicted, even if it alone exceeds the budget — a put you just accepted must
be decidable at least once).  Evictions invoke the optional ``on_evict``
callback outside the registry lock so the serve layer can invalidate
incremental states without lock-ordering hazards.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable

from ..db.instance import DatabaseInstance
from ..exceptions import UnknownInstanceError, VersionConflictError
from .delta import Delta

_DEFAULT_MAX_BYTES = 64 * 1024 * 1024
_DEFAULT_DELTA_LOG = 64

# per-fact overhead (python object headers, index slots) added to the
# payload estimate; values are costed at their string length or a fixed
# size for integers
_FACT_OVERHEAD = 48
_INT_BYTES = 8


def estimate_fact_bytes(fact) -> int:
    """A stable, cheap estimate of one fact's resident size."""
    total = _FACT_OVERHEAD + len(fact.relation)
    for value in fact.values:
        total += len(value) if isinstance(value, str) else _INT_BYTES
    return total


def estimate_instance_bytes(db: DatabaseInstance) -> int:
    return sum(estimate_fact_bytes(f) for f in db.facts)


@dataclass(frozen=True)
class StoredInstance:
    """Public metadata snapshot of one registry entry."""

    ref: str
    version: int
    facts: int
    bytes: int

    def to_dict(self) -> dict:
        return {
            "ref": self.ref,
            "version": self.version,
            "facts": self.facts,
            "bytes": self.bytes,
        }


class _Entry:
    __slots__ = ("instance", "version", "nbytes", "log")

    def __init__(self, instance: DatabaseInstance, version: int, nbytes: int):
        self.instance = instance
        self.version = version
        self.nbytes = nbytes
        # version -> the Delta that produced that version
        self.log: OrderedDict[int, Delta] = OrderedDict()


class InstanceRegistry:
    """Thread-safe bounded store of named, versioned instances."""

    def __init__(
        self,
        *,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        delta_log: int = _DEFAULT_DELTA_LOG,
        on_evict: Callable[[str], None] | None = None,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if delta_log < 0:
            raise ValueError(f"delta_log must be >= 0, got {delta_log}")
        self._max_bytes = max_bytes
        self._delta_log = delta_log
        self._on_evict = on_evict
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        self._evictions = 0
        self._puts = 0
        self._patches = 0
        self._lock = threading.RLock()

    # -- mutation -------------------------------------------------------------

    def put(
        self,
        ref: str,
        instance: DatabaseInstance,
        *,
        version: int | None = None,
    ) -> StoredInstance:
        """Install (or wholesale replace) *ref* at ``version`` (default 1).

        A put resets the delta log: states built against an older payload
        cannot catch up across a replace and must rebuild.
        """
        if version is not None and version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        nbytes = estimate_instance_bytes(instance)
        with self._lock:
            entry = _Entry(instance, 1 if version is None else version, nbytes)
            old = self._entries.pop(ref, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[ref] = entry
            self._bytes += nbytes
            self._puts += 1
            info = self._info(ref, entry)
            evicted = self._evict_over_budget(keep=ref)
        self._notify_evicted(evicted)
        return info

    def patch(
        self,
        ref: str,
        delta: Delta,
        *,
        expect_version: int | None = None,
    ) -> tuple[StoredInstance, Delta]:
        """Apply *delta* to *ref* under strict conflict rules; bump version.

        ``expect_version`` is a compare-and-swap precondition: when given and
        different from the stored version, the patch fails with
        :class:`~repro.exceptions.VersionConflictError` without touching the
        instance.  Returns the new metadata and the applied delta.
        """
        with self._lock:
            entry = self._entries.get(ref)
            if entry is None:
                raise UnknownInstanceError(ref)
            if expect_version is not None and expect_version != entry.version:
                raise VersionConflictError(ref, expect_version, entry.version)
            # strict apply: raises DeltaConflictError before any state change
            entry.instance = delta.apply(entry.instance)
            entry.version += 1
            added = sum(estimate_fact_bytes(f) for f in delta.adds)
            removed = sum(estimate_fact_bytes(f) for f in delta.removes)
            self._bytes += added - removed
            entry.nbytes += added - removed
            if self._delta_log:
                entry.log[entry.version] = delta
                while len(entry.log) > self._delta_log:
                    entry.log.popitem(last=False)
            self._entries.move_to_end(ref)
            self._patches += 1
            info = self._info(ref, entry)
            evicted = self._evict_over_budget(keep=ref)
        self._notify_evicted(evicted)
        return info, delta

    def apply_at(self, ref: str, delta: Delta, version: int) -> StoredInstance:
        """Apply the delta that produced *version* on a copy at ``version - 1``.

        The replica-side mirror of :meth:`patch`: a ring successor holding
        *ref* at ``version - 1`` applies the owner's delta and lands at
        exactly ``version`` — same strict conflict rules, same delta log,
        so a promoted replica can itself serve incremental catch-up.  A
        copy at any other version raises
        :class:`~repro.exceptions.VersionConflictError`, telling the
        replicator to fall back to a snapshot.
        """
        if version < 2:
            raise ValueError(f"a delta cannot produce version {version}")
        info, _ = self.patch(ref, delta, expect_version=version - 1)
        return info

    def drop(self, ref: str) -> bool:
        """Remove *ref*; True iff it was present."""
        with self._lock:
            entry = self._entries.pop(ref, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            return True

    # -- access ---------------------------------------------------------------

    def get(self, ref: str) -> tuple[DatabaseInstance, int]:
        """The instance and version stored under *ref* (touches LRU order)."""
        with self._lock:
            entry = self._entries.get(ref)
            if entry is None:
                raise UnknownInstanceError(ref)
            self._entries.move_to_end(ref)
            return entry.instance, entry.version

    def info(self, ref: str) -> StoredInstance:
        with self._lock:
            entry = self._entries.get(ref)
            if entry is None:
                raise UnknownInstanceError(ref)
            return self._info(ref, entry)

    def deltas_since(
        self, ref: str, version: int
    ) -> list[tuple[int, Delta]] | None:
        """The ``(version, delta)`` chain from *version* (exclusive) to now.

        Returns ``None`` when the chain is broken — the log was trimmed, or
        the entry was replaced by a put — in which case the caller must
        rebuild from the full instance.
        """
        with self._lock:
            entry = self._entries.get(ref)
            if entry is None:
                raise UnknownInstanceError(ref)
            if version == entry.version:
                return []
            if version > entry.version:
                return None
            chain = []
            for v in range(version + 1, entry.version + 1):
                delta = entry.log.get(v)
                if delta is None:
                    return None
                chain.append((v, delta))
            return chain

    def refs(self) -> list[str]:
        """All refs, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def list(self) -> list[StoredInstance]:
        """Metadata for every entry, least-recently-used first."""
        with self._lock:
            return [self._info(ref, e) for ref, e in self._entries.items()]

    def stats(self) -> dict:
        with self._lock:
            return {
                "instances": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self._max_bytes,
                "puts": self._puts,
                "patches": self._patches,
                "evictions": self._evictions,
            }

    def __contains__(self, ref: str) -> bool:
        with self._lock:
            return ref in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals ------------------------------------------------------------

    def _info(self, ref: str, entry: _Entry) -> StoredInstance:
        return StoredInstance(
            ref=ref,
            version=entry.version,
            facts=entry.instance.size,
            bytes=entry.nbytes,
        )

    def _evict_over_budget(self, *, keep: str) -> list[str]:
        # caller holds the lock; returns refs evicted, LRU first
        evicted: list[str] = []
        while self._bytes > self._max_bytes and len(self._entries) > 1:
            ref = next(iter(self._entries))
            if ref == keep:
                # keep is LRU-first only when it is the sole other entry;
                # rotate it to the back and retry
                self._entries.move_to_end(ref)
                continue
            entry = self._entries.pop(ref)
            self._bytes -= entry.nbytes
            self._evictions += 1
            evicted.append(ref)
        return evicted

    def _notify_evicted(self, evicted: Iterable[str]) -> None:
        if self._on_evict is None:
            return
        for ref in evicted:
            self._on_evict(ref)
