"""Incremental re-decision over registry-held instances.

The :class:`InstanceStore` combines the named-instance registry with a
bounded cache of **incremental decision states**, keyed by ``(ref,
canonical class, request spelling)``.  A state is a backend-native data
structure seeded from one transported instance that can (a) absorb a
:class:`~repro.store.Delta` chain and (b) re-answer the certainty question
from what it already holds — skipping the per-request transport and
from-scratch evaluation a plain ``decide`` pays:

``fo-sql`` / ``fo-duckdb``
    a dedicated warm connection per state; deltas become row ``DELETE`` /
    ``INSERT`` DML and re-deciding runs the plan's precompiled ``SELECT``
    (first-order view maintenance in its database-native form).
``nl-reachability``
    the Proposition 16 digraph is maintained delta-locally — blocks, the
    diagonal, and a mentions index confine edge re-derivation to vertices
    the delta touched — and the linear forced-capture attractor re-runs
    over the maintained graph.
``p-dual-horn``
    semi-naive closure repair: per-block satisfying/falsifying counters
    back a persistent dual-unit-propagation state; *strengthening* deltas
    (new clauses, shrinking clause bodies) propagate forward from the
    existing false-set, while *weakening* deltas mark the state dirty and
    re-propagate from the maintained counters at the next solve.

Every other backend falls back to a full re-decide of the registry
instance, with the decision's provenance saying so (``incremental=False``,
strategy ``full``).  Incremental answers are definitionally equal to
from-scratch answers; the randomized oracle-agreement tests in
``tests/test_store_incremental.py`` enforce that across mutation streams.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict

from ..api.decision import Decision
from ..db.instance import DatabaseInstance
from ..obs.trace import record_span
from .delta import Delta
from .registry import InstanceRegistry, StoredInstance

_BOTTOM = ("⊥",)


class _UnsupportedDelta(Exception):
    """Internal: this state cannot maintain itself through the delta (or
    the seed instance); the store falls back to a full re-decide."""


def _transport_delta(form, delta: Delta) -> Delta:
    """Rename *delta* into the canonical spelling, fact by fact.

    Transport is a per-fact map (rename through the recorded renaming,
    drop reserved-alphabet strays), so it distributes over set union and
    difference: applying the transported delta to the transported instance
    equals transporting the patched instance.
    """
    return Delta(
        adds=form.transport_instance(DatabaseInstance(delta.adds)).facts,
        removes=form.transport_instance(
            DatabaseInstance(delta.removes)
        ).facts,
    )


# -- backend-native incremental states ----------------------------------------


class _SqlState:
    """Row-DML maintenance over a dedicated warm SQL connection."""

    strategy = "sql-dml"

    def __init__(self, solver, db: DatabaseInstance):
        from ..fo.sql import _quote_identifier, create_table_statements

        schema = solver.query.schema()
        self._relations = frozenset(solver.query.relations)
        self._encoder = solver.dialect.value_encoder or (lambda v: v)
        self._select = solver.sql
        self._insert = {}
        self._delete = {}
        for relation in self._relations:
            arity = schema[relation].arity
            quoted = _quote_identifier(relation)
            marks = ", ".join("?" * arity)
            where = " AND ".join(f"c{i + 1} = ?" for i in range(arity))
            self._insert[relation] = f"INSERT INTO {quoted} VALUES ({marks})"
            self._delete[relation] = f"DELETE FROM {quoted} WHERE {where}"
        self._connection = solver.dialect.connect()
        for ddl in create_table_statements(schema, solver.dialect.column_type):
            self._connection.execute(ddl)
        for fact in db.restrict_relations(self._relations):
            self._execute(self._insert, fact)

    def _execute(self, statements: dict, fact) -> None:
        self._connection.execute(
            statements[fact.relation],
            tuple(self._encoder(v) for v in fact.values),
        )

    def apply(self, delta: Delta) -> None:
        for fact in delta.removes:
            if fact.relation in self._relations:
                self._execute(self._delete, fact)
        for fact in delta.adds:
            if fact.relation in self._relations:
                self._execute(self._insert, fact)

    def solve(self) -> bool:
        (result,) = self._connection.execute(self._select).fetchone()
        return bool(result)

    def close(self) -> None:
        try:
            self._connection.close()
        except Exception:
            pass


class _ReachabilityState:
    """Delta-local maintenance of the Proposition 16 digraph.

    ``blocks`` maps each ``N``-key to its second-position values, the
    ``mentions`` reverse index maps a value to the keys whose block
    contains it, and ``dirty`` accumulates the keys whose outgoing edges
    must be re-derived — a delta touching vertex ``c`` dirties ``c`` and,
    when ``c``'s diagonal membership flips, exactly the keys mentioning
    ``c``.  ``solve`` repairs the dirty edges and re-runs the linear
    attractor over the maintained graph.
    """

    strategy = "p16-attractor"

    def __init__(self, solver, db: DatabaseInstance):
        self._n = solver.n_relation
        self._o = solver.o_relation
        self._blocks: dict[object, set[object]] = {}
        self._mentions: dict[object, set[object]] = {}
        self._diagonal: set[object] = set()
        self._o_count: Counter = Counter()
        self._edges: dict[object, set[object]] = {}
        self._dirty: set[object] = set()
        for fact in db.relation_facts(self._n):
            self._apply_n(fact, added=True)
        for fact in db.relation_facts(self._o):
            self._o_count[fact.value_at(1)] += 1

    def _apply_n(self, fact, *, added: bool) -> None:
        if fact.arity != 2 or fact.key_size != 1:
            raise _UnsupportedDelta(
                f"{self._n}-fact {fact!r} is outside the (2, 1) signature"
            )
        c, d = fact.value_at(1), fact.value_at(2)
        if added:
            self._blocks.setdefault(c, set()).add(d)
            self._mentions.setdefault(d, set()).add(c)
        else:
            block = self._blocks.get(c)
            if block is not None:
                block.discard(d)
                if not block:
                    del self._blocks[c]
            keys = self._mentions.get(d)
            if keys is not None:
                keys.discard(c)
                if not keys:
                    del self._mentions[d]
        self._dirty.add(c)
        if c == d:
            if added:
                self._diagonal.add(c)
            else:
                self._diagonal.discard(c)
            # c's diagonal membership flipped: every block containing c
            # may gain or lose its escape edge
            self._dirty.update(self._mentions.get(c, ()))

    def apply(self, delta: Delta) -> None:
        for fact in delta.removes:
            if fact.relation == self._n:
                self._apply_n(fact, added=False)
            elif fact.relation == self._o:
                self._o_count[fact.value_at(1)] -= 1
        for fact in delta.adds:
            if fact.relation == self._n:
                self._apply_n(fact, added=True)
            elif fact.relation == self._o:
                self._o_count[fact.value_at(1)] += 1

    def solve(self) -> bool:
        from ..solvers.reachability import ReachabilityGraph

        for c in self._dirty:
            if c in self._diagonal:
                others = self._blocks.get(c, set()) - {c}
                if others <= self._diagonal:
                    self._edges[c] = others
                else:
                    self._edges[c] = {_BOTTOM}
            else:
                self._edges.pop(c, None)
        self._dirty.clear()
        marked = {
            v
            for v, count in self._o_count.items()
            if count > 0 and v in self._diagonal
        }
        graph = ReachabilityGraph(
            vertices=set(self._diagonal) | {_BOTTOM},
            edges=self._edges,
            marked=marked,
        )
        return graph.some_marked_doomed()

    def close(self) -> None:
        pass


class _DualHornState:
    """Semi-naive repair of the Proposition 17 dual-Horn closure.

    The ground truth is a pair of per-block counters (satisfying values,
    falsifying values) plus an ``O``-value counter; on top sits a
    persistent dual-unit-propagation state (clauses with open-positive
    counts, a watching index, the forced-false set).  *Strengthening*
    mutations — a new positive unit clause, a new block clause, a literal
    leaving a clause body — extend the closure forward from the existing
    false-set; *weakening* mutations — a clause or literal coming back —
    cannot be repaired monotonically, so they mark the state dirty and the
    next solve re-propagates from the counters (still skipping instance
    transport and reduction re-derivation).
    """

    strategy = "dual-horn-repair"

    def __init__(self, solver, db: DatabaseInstance):
        self._constant = solver.constant
        self._n = solver.n_relation
        self._o = solver.o_relation
        self._o_count: Counter = Counter()
        # key -> (satisfying value counter, falsifying value counter)
        self._blocks: dict[tuple, tuple[Counter, Counter]] = {}
        self._dirty = True
        self._reset_propagation()
        for fact in db.relation_facts(self._o):
            self._o_count[fact.value_at(1)] += 1
        for fact in db.relation_facts(self._n):
            self._count_n(fact, step=1)

    # -- ground-truth counters ------------------------------------------------

    def _count_n(self, fact, step: int) -> tuple[tuple, object, bool, bool]:
        if fact.arity != 3:
            raise _UnsupportedDelta(
                f"{self._n}-fact {fact!r} is outside the arity-3 signature"
            )
        satisfying = fact.value_at(2) == self._constant
        sat, fal = self._blocks.setdefault(fact.key, (Counter(), Counter()))
        counter = sat if satisfying else fal
        value = fact.value_at(3)
        counter[value] += step
        crossed = (
            counter[value] == 1 if step > 0 else counter[value] == 0
        )
        return fact.key, value, satisfying, crossed

    # -- persistent propagation state ----------------------------------------

    def _reset_propagation(self) -> None:
        # clause -> [open positive count, negative value or None]
        self._clauses: list[list] = []
        # positive value -> clause indexes still counting it open
        self._watching: dict[object, set[int]] = {}
        # block key -> {satisfying value p -> clause index}
        self._block_clauses: dict[tuple, dict[object, int]] = {}
        self._false: set[object] = set()
        self._unsat = False

    def _new_clause(self, positives, negative) -> None:
        index = len(self._clauses)
        open_count = 0
        for value in positives:
            if value not in self._false:
                self._watching.setdefault(value, set()).add(index)
                open_count += 1
        self._clauses.append([open_count, negative])
        if negative is not None and negative in self._false:
            # already-forced negatives make the clause vacuously true
            return
        if open_count == 0:
            self._fire(index)

    def _fire(self, index: int) -> None:
        queue = [index]
        while queue:
            clause = self._clauses[queue.pop()]
            negative = clause[1]
            if negative is None:
                self._unsat = True
                continue
            if negative in self._false:
                continue
            self._false.add(negative)
            for watcher in self._watching.pop(negative, ()):  # noqa: B020
                watched = self._clauses[watcher]
                watched[0] -= 1
                if watched[0] == 0:
                    queue.append(watcher)

    def _drop_literal(self, key: tuple, value: object) -> None:
        # a falsifying value left the block: remove the literal from every
        # clause of the block that still counts it open
        for index in self._block_clauses.get(key, {}).values():
            watchers = self._watching.get(value)
            if watchers is not None and index in watchers:
                watchers.discard(index)
                if not watchers:
                    del self._watching[value]
                clause = self._clauses[index]
                clause[0] -= 1
                if clause[0] == 0:
                    self._fire(index)

    def _add_block_clause(self, key: tuple, p: object) -> None:
        sat, fal = self._blocks[key]
        positives = [q for q, count in fal.items() if count > 0]
        index = len(self._clauses)
        self._block_clauses.setdefault(key, {})[p] = index
        self._new_clause(positives, p)

    def _rebuild(self) -> None:
        self._reset_propagation()
        for value, count in self._o_count.items():
            if count > 0:
                self._new_clause((value,), None)
        for key, (sat, fal) in self._blocks.items():
            for p, count in sat.items():
                if count > 0:
                    self._add_block_clause(key, p)
        self._dirty = False

    # -- delta application ----------------------------------------------------

    def apply(self, delta: Delta) -> None:
        for fact in delta.removes:
            if fact.relation == self._o:
                value = fact.value_at(1)
                self._o_count[value] -= 1
                if self._o_count[value] == 0:
                    self._dirty = True  # weakening: unit clause retracted
            elif fact.relation == self._n:
                key, value, satisfying, crossed = self._count_n(fact, -1)
                if not crossed or self._dirty:
                    continue
                if satisfying:
                    self._dirty = True  # weakening: block clause retracted
                else:
                    self._drop_literal(key, value)  # strengthening
        for fact in delta.adds:
            if fact.relation == self._o:
                value = fact.value_at(1)
                self._o_count[value] += 1
                if self._o_count[value] == 1 and not self._dirty:
                    self._new_clause((value,), None)  # strengthening
            elif fact.relation == self._n:
                key, value, satisfying, crossed = self._count_n(fact, 1)
                if not crossed or self._dirty:
                    continue
                if satisfying:
                    self._add_block_clause(key, value)  # strengthening
                else:
                    self._dirty = True  # weakening: literal re-enters bodies

    def solve(self) -> bool:
        if self._dirty:
            self._rebuild()
        # certain iff the dual-Horn encoding is unsatisfiable
        return self._unsat

    def close(self) -> None:
        pass


def _build_state(plan, db: DatabaseInstance):
    """The backend-native state for *plan* seeded from canonical *db*, or
    ``None`` when the backend has no incremental form."""
    backend = plan.backend
    if backend in ("fo-sql", "fo-duckdb"):
        return _SqlState(plan.solver, db)
    if backend == "nl-reachability":
        return _ReachabilityState(plan.solver, db)
    if backend == "p-dual-horn":
        return _DualHornState(plan.solver, db)
    return None


# -- the store facade ---------------------------------------------------------


class _StateEntry:
    __slots__ = ("state", "version", "answer")

    def __init__(self, state, version: int, answer: bool):
        self.state = state
        self.version = version
        self.answer = answer

    def close(self) -> None:
        self.state.close()


class InstanceStore:
    """Registry + incremental-state cache + ref-decide orchestration.

    One store lives per serving shard owner (the thread-mode server, or
    each fleet worker).  ``decide`` routes the problem through the given
    session's engine exactly like a payload decide, then answers from the
    freshest of: a version-matched memo, a delta-caught-up incremental
    state, or a full re-decide (building a fresh state for backends that
    support one).
    """

    def __init__(
        self,
        *,
        max_bytes: int = 64 * 1024 * 1024,
        delta_log: int = 64,
        state_capacity: int = 128,
    ):
        self._registry = InstanceRegistry(
            max_bytes=max_bytes,
            delta_log=delta_log,
            on_evict=self._invalidate,
        )
        self._state_capacity = state_capacity
        self._states: OrderedDict[tuple, _StateEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._incremental_decides = 0
        self._full_decides = 0

    @property
    def registry(self) -> InstanceRegistry:
        return self._registry

    # -- registry proxies (with state invalidation) ---------------------------

    def put(
        self,
        ref: str,
        instance: DatabaseInstance,
        *,
        version: int | None = None,
    ) -> StoredInstance:
        info = self._registry.put(ref, instance, version=version)
        self._invalidate(ref)
        return info

    def patch(
        self,
        ref: str,
        delta: Delta,
        *,
        expect_version: int | None = None,
    ) -> tuple[StoredInstance, Delta]:
        # states are not invalidated: they catch up from the delta log
        return self._registry.patch(ref, delta, expect_version=expect_version)

    def drop(self, ref: str) -> bool:
        dropped = self._registry.drop(ref)
        self._invalidate(ref)
        return dropped

    def get(self, ref: str) -> tuple[DatabaseInstance, int]:
        return self._registry.get(ref)

    def list(self) -> list[StoredInstance]:
        return self._registry.list()

    def stats(self) -> dict:
        stats = self._registry.stats()
        with self._lock:
            stats["states"] = len(self._states)
            stats["incremental_decides"] = self._incremental_decides
            stats["full_decides"] = self._full_decides
        return stats

    def close(self) -> None:
        with self._lock:
            entries, self._states = list(self._states.values()), OrderedDict()
        for entry in entries:
            entry.close()

    # -- the ref decide -------------------------------------------------------

    def decide(self, session, problem, ref: str) -> tuple[Decision, dict]:
        """Answer ``CERTAINTY(problem)`` over the instance stored at *ref*.

        Returns the :class:`~repro.api.Decision` (with ``incremental``
        provenance) plus a metadata dict (``ref``, ``version``,
        ``strategy``) the serve layer attaches to the response.  Raises
        :class:`~repro.exceptions.UnknownInstanceError` when *ref* is not
        held (never stored, dropped, or evicted).
        """
        start = time.perf_counter()
        instance, version = self._registry.get(ref)
        plan, hit, form = session.engine.route(problem)
        key = (ref, plan.fingerprint.digest, form.fingerprint.raw)
        labels = {
            "class": plan.fingerprint.digest,
            "backend": plan.backend,
            "ref": ref,
        }
        entry = self._take_state(key)
        answer: bool | None = None
        strategy = "full"
        if entry is not None:
            answer, strategy = self._try_incremental(
                entry, key, ref, version, form, labels
            )
            if answer is None:
                entry = None  # consumed (closed) by the failed catch-up
        incremental = answer is not None
        if answer is None:
            answer, strategy, entry = self._decide_full(
                plan, form, instance, version, labels
            )
        if entry is not None:
            self._store_state(key, entry)
        wall = time.perf_counter() - start
        record_span(
            "solve", wall,
            labels={"class": plan.fingerprint.digest,
                    "backend": plan.backend},
        )
        with self._lock:
            if incremental:
                self._incremental_decides += 1
            else:
                self._full_decides += 1
        decision = Decision(
            certain=answer,
            fingerprint=plan.fingerprint.digest,
            raw_fingerprint=form.fingerprint.raw,
            verdict=plan.classification.verdict.name,
            backend=plan.backend,
            cache_hit=hit,
            wall_seconds=wall,
            incremental=incremental,
        )
        meta = {
            "ref": ref,
            "version": version,
            "strategy": strategy,
            "incremental": incremental,
        }
        return decision, meta

    def _try_incremental(
        self, entry: _StateEntry, key, ref, version, form, labels
    ) -> tuple[bool | None, str]:
        """A memoized or caught-up answer, or ``(None, "full")`` after
        closing the entry when it cannot be carried forward."""
        if entry.version == version:
            return entry.answer, "memo"
        chain = self._registry.deltas_since(ref, entry.version)
        if chain is None:  # log trimmed or instance replaced: rebuild
            entry.close()
            return None, "full"
        try:
            applied = time.perf_counter()
            for _version, delta in chain:
                entry.state.apply(_transport_delta(form, delta))
            record_span(
                "delta_apply", time.perf_counter() - applied, labels=labels
            )
            solved = time.perf_counter()
            answer = entry.state.solve()
            record_span(
                "incremental_solve",
                time.perf_counter() - solved,
                labels=labels,
            )
        except Exception:
            # any maintenance failure (unsupported signature, connection
            # loss, ...) degrades to a from-scratch decide
            entry.close()
            return None, "full"
        entry.version = version
        entry.answer = answer
        return answer, entry.state.strategy

    def _decide_full(
        self, plan, form, instance, version, labels
    ) -> tuple[bool, str, _StateEntry | None]:
        transported = form.transport_instance(instance)
        try:
            state = _build_state(plan, transported)
        except Exception:
            state = None
        if state is not None:
            try:
                solved = time.perf_counter()
                answer = state.solve()
                record_span(
                    "incremental_solve",
                    time.perf_counter() - solved,
                    labels=labels,
                )
                return answer, "rebuild", _StateEntry(state, version, answer)
            except Exception:
                state.close()
        return plan.decide_canonical(transported), "full", None

    # -- state cache ----------------------------------------------------------

    def _take_state(self, key) -> _StateEntry | None:
        """Pop the state for exclusive use (concurrent decides of the same
        key simply rebuild; the freshest state wins on put-back)."""
        with self._lock:
            return self._states.pop(key, None)

    def _store_state(self, key, entry: _StateEntry) -> None:
        evicted: list[_StateEntry] = []
        with self._lock:
            old = self._states.pop(key, None)
            if old is not None:
                evicted.append(old)
            self._states[key] = entry
            while len(self._states) > self._state_capacity:
                _, oldest = self._states.popitem(last=False)
                evicted.append(oldest)
        for stale in evicted:
            stale.close()

    def _invalidate(self, ref: str) -> None:
        with self._lock:
            doomed = [k for k in self._states if k[0] == ref]
            entries = [self._states.pop(k) for k in doomed]
        for entry in entries:
            entry.close()
