"""Instance deltas: ``+fact`` / ``-fact`` mutation sets with conflict rules.

A :class:`Delta` is the unit of mutation in the ``repro.store`` registry: a
pair of disjoint fact sets to add and to remove.  Deltas are value objects
with a lossless JSON wire form that mirrors the instance document
(:mod:`repro.db.io`) — each side is a relation map carrying signature and
rows — so the same value domain (strings and non-boolean integers) and the
same validation applies::

    {"format": "repro/delta", "version": 1,
     "add":    {"R": {"arity": 2, "key_size": 1, "rows": [["a", "c"]]}},
     "remove": {"R": {"arity": 2, "key_size": 1, "rows": [["a", "b"]]}}}

Strict application (the registry default) enforces the conflict rules the
serve protocol surfaces as the ``conflict`` error code: removing an absent
fact and adding an already-present fact are both errors, because silently
ignoring either would let a client's picture of the instance drift from the
server's.  ``strict=False`` application treats both as no-ops, which is what
:func:`Delta.diff` round-trips rely on: ``Delta.diff(a, b).apply(a) == b``
holds for any two instances over compatible signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..db import io as db_io
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..exceptions import DeltaConflictError, InstanceFormatError

_FORMAT = "repro/delta"
_VERSION = 1


@dataclass(frozen=True)
class Delta:
    """A disjoint pair of fact sets: ``adds`` to insert, ``removes`` to delete.

    >>> a = DatabaseInstance([Fact("R", ("x", 1), 1)])
    >>> b = DatabaseInstance([Fact("R", ("x", 2), 1)])
    >>> Delta.diff(a, b).apply(a) == b
    True
    """

    adds: frozenset[Fact] = field(default_factory=frozenset)
    removes: frozenset[Fact] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "adds", frozenset(self.adds))
        object.__setattr__(self, "removes", frozenset(self.removes))
        overlap = self.adds & self.removes
        if overlap:
            sample = sorted(overlap, key=repr)[0]
            raise DeltaConflictError(
                f"delta both adds and removes {sample!r} "
                f"({len(overlap)} overlapping fact(s))"
            )

    @staticmethod
    def of(
        adds: Iterable[Fact] = (), removes: Iterable[Fact] = ()
    ) -> "Delta":
        return Delta(frozenset(adds), frozenset(removes))

    @staticmethod
    def diff(a: DatabaseInstance, b: DatabaseInstance) -> "Delta":
        """The delta turning *a* into *b*: ``diff(a, b).apply(a) == b``."""
        return Delta(adds=b.facts - a.facts, removes=a.facts - b.facts)

    # -- application ----------------------------------------------------------

    def apply(
        self, db: DatabaseInstance, *, strict: bool = True
    ) -> DatabaseInstance:
        """*db* with this delta applied.

        Under ``strict`` (the default), removing a fact absent from *db* or
        adding a fact already present raises
        :class:`~repro.exceptions.DeltaConflictError`; with ``strict=False``
        both are no-ops.  Signature conflicts between added facts and *db*
        propagate as :class:`~repro.exceptions.SchemaError` from instance
        construction either way.
        """
        if strict:
            missing = self.removes - db.facts
            if missing:
                sample = sorted(missing, key=repr)[0]
                raise DeltaConflictError(
                    f"delta removes absent fact {sample!r} "
                    f"({len(missing)} such fact(s))"
                )
            duplicate = self.adds & db.facts
            if duplicate:
                sample = sorted(duplicate, key=repr)[0]
                raise DeltaConflictError(
                    f"delta adds already-present fact {sample!r} "
                    f"({len(duplicate)} such fact(s))"
                )
        return DatabaseInstance((db.facts - self.removes) | self.adds)

    def inverse(self) -> "Delta":
        """The delta undoing this one (on the post-application instance)."""
        return Delta(adds=self.removes, removes=self.adds)

    # -- introspection --------------------------------------------------------

    @property
    def relations(self) -> frozenset[str]:
        """Relation names touched by either side."""
        return frozenset(
            f.relation for side in (self.adds, self.removes) for f in side
        )

    def __len__(self) -> int:
        return len(self.adds) + len(self.removes)

    def __bool__(self) -> bool:
        return bool(self.adds or self.removes)

    # -- wire form ------------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-JSON-compatible dict losslessly encoding this delta."""
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "add": db_io.to_dict(DatabaseInstance(self.adds))["relations"],
            "remove": db_io.to_dict(DatabaseInstance(self.removes))[
                "relations"
            ],
        }

    @staticmethod
    def from_dict(data: object) -> "Delta":
        """Rebuild a delta from :meth:`to_dict` output.

        Raises :class:`~repro.exceptions.InstanceFormatError` on malformed
        input and :class:`~repro.exceptions.DeltaConflictError` when the two
        sides overlap.
        """
        if not isinstance(data, Mapping):
            raise InstanceFormatError(
                f"delta document must be a JSON object, got "
                f"{type(data).__name__}"
            )
        if data.get("format") != _FORMAT:
            raise InstanceFormatError(
                f"not a delta document: format={data.get('format')!r} "
                f"(expected {_FORMAT!r})"
            )
        if data.get("version") != _VERSION:
            raise InstanceFormatError(
                f"unsupported delta version {data.get('version')!r} "
                f"(this library reads version {_VERSION})"
            )
        sides = {}
        for side in ("add", "remove"):
            relations = data.get(side, {})
            # reuse the instance document decoder for signature/value checks
            sides[side] = db_io.from_dict(
                {
                    "format": db_io._FORMAT,
                    "version": db_io._VERSION,
                    "relations": relations,
                }
            ).facts
        return Delta(adds=sides["add"], removes=sides["remove"])
