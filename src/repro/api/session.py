"""The session facade: the canonical way to consume this library.

A :class:`Session` owns a :class:`~repro.engine.CertaintyEngine` and speaks
:class:`~repro.api.Problem` in, :class:`~repro.api.Decision` out — the
database-client idiom (connect, prepare, execute, close) applied to
``CERTAINTY(q, FK)``::

    from repro.api import Problem, connect

    problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
    with connect(fo_backend="sql") as session:
        decision = session.decide(problem, db)
        print(decision.certain, decision.backend, decision.cache_hit)
        batch = session.decide_batch(problem, dbs)   # one warm plan
        print(session.explain(problem))

Sessions are context managers; closing one releases every prepared
solver's resources (warm SQLite connections included).  All heavy lifting
— fingerprint-keyed plan caching, registry routing, batch execution —
stays in the engine; the session adds problem coercion and structured,
serializable decisions.
"""

from __future__ import annotations

import logging
import time
from typing import Iterable

from ..core.classify import Classification, classify
from ..core.rewriting import RewritingResult, consistent_rewriting
from ..db.instance import DatabaseInstance
from ..engine.engine import (
    CertaintyEngine,
    EngineConfig,
    EngineStats,
)
from ..engine.executor import ExecutorConfig
from ..engine.plan import CertaintyPlan
from ..engine.registry import BackendRegistry, RouteOptions, default_registry
from ..obs.log import get_logger, log_event
from ..obs.trace import record_span
from ..solvers.base import PreparedSolver
from .decision import BatchDecision, Decision
from .problem import Problem

_logger = get_logger("api.session")

# The session-level alias: a session is configured exactly like the engine
# it wraps.
SessionConfig = EngineConfig


class Session:
    """A stateful facade over one :class:`~repro.engine.CertaintyEngine`."""

    def __init__(
        self,
        config: SessionConfig | None = None,
        *,
        engine: CertaintyEngine | None = None,
    ):
        if engine is not None and config is not None:
            raise TypeError("pass either a config or an engine, not both")
        self._engine = engine or CertaintyEngine(config)
        self._store = None  # lazy InstanceStore; built on first use
        self._closed = False

    @property
    def engine(self) -> CertaintyEngine:
        """The wrapped engine (for interop with pre-session code)."""
        return self._engine

    @property
    def config(self) -> SessionConfig:
        return self._engine.config

    # -- analysis -----------------------------------------------------------

    def classify(self, problem: Problem) -> Classification:
        """The Theorem 12 classification (no solver is constructed)."""
        self._check_open()
        return classify(problem.query, problem.fks)

    def rewrite(self, problem: Problem) -> RewritingResult:
        """The consistent FO rewriting; raises
        :class:`~repro.exceptions.NotInFOError` outside the FO class."""
        self._check_open()
        return consistent_rewriting(problem.query, problem.fks)

    def explain(self, problem: Problem) -> str:
        """The compiled plan's summary (compiling and caching on demand)."""
        self._check_open()
        return self._engine.explain(problem)

    # -- preparation --------------------------------------------------------

    def prepare(self, problem: Problem) -> CertaintyPlan:
        """Compile (or fetch) the problem's plan with its prepared solver.

        The plan stays owned by the session's cache — do not ``close()`` it
        directly; it is released on eviction or :meth:`close`.
        """
        self._check_open()
        return self._engine.plan_for(problem)

    # -- named instances -----------------------------------------------------

    @property
    def store(self):
        """The session's :class:`~repro.store.InstanceStore` (lazy).

        Holds the named instances behind :meth:`put_instance` /
        :meth:`patch_instance` / ``decide(ref=...)`` plus their per-plan
        incremental states; released with the session.
        """
        self._check_open()
        if self._store is None:
            from ..store import InstanceStore

            self._store = InstanceStore()
        return self._store

    def put_instance(self, ref: str, db: DatabaseInstance, *,
                     version: int | None = None):
        """Store (or replace) a named instance; returns its descriptor."""
        return self.store.put(ref, db, version=version)

    def patch_instance(self, ref: str, delta, *,
                       expect_version: int | None = None):
        """Apply a :class:`~repro.store.Delta` to a named instance.

        ``expect_version`` makes the patch compare-and-set: it raises
        :class:`~repro.exceptions.VersionConflictError` unless the stored
        version still matches.  Returns ``(descriptor, applied_delta)``.
        """
        return self.store.patch(ref, delta, expect_version=expect_version)

    def drop_instance(self, ref: str) -> bool:
        """Discard a named instance (returns whether it existed)."""
        return self.store.drop(ref)

    def get_instance(self, ref: str) -> tuple[DatabaseInstance, int]:
        """Fetch a named instance back: ``(instance, version)``."""
        return self.store.get(ref)

    # -- execution ----------------------------------------------------------

    def decide(
        self,
        problem: Problem,
        db: DatabaseInstance | None = None,
        *,
        ref: str | None = None,
    ) -> Decision:
        """The certain answer on one instance, with provenance.

        Pass *db* to decide a caller-held instance, or ``ref=`` to decide
        against a named instance previously :meth:`put_instance` — the
        session's store then answers from backend-native incremental state
        when the instance only changed by patches since the last decide
        (the decision's ``incremental`` flag reports which path ran).

        The decision reports both fingerprints: ``fingerprint`` is the
        canonical class the plan is shared under, ``raw_fingerprint`` the
        spelling this request used — the transport back through the
        recorded renaming.
        """
        self._check_open()
        if (db is None) == (ref is None):
            raise TypeError(
                "decide needs exactly one of a database instance or a ref"
            )
        if ref is not None:
            decision, _meta = self.store.decide(self, problem, ref)
            return decision
        start = time.perf_counter()
        plan, hit, form = self._engine.route(problem)
        try:
            certain = plan.decide(db, form=form)
        except Exception as error:
            self._record_failure(plan, error)
            raise
        wall = time.perf_counter() - start
        record_span(
            "solve", wall,
            labels={"class": plan.fingerprint.digest,
                    "backend": plan.backend},
        )
        self._warn_if_slow(plan, wall, instances=1)
        return Decision(
            certain=certain,
            fingerprint=plan.fingerprint.digest,
            raw_fingerprint=form.fingerprint.raw,
            verdict=plan.classification.verdict.name,
            backend=plan.backend,
            cache_hit=hit,
            wall_seconds=wall,
        )

    def decide_batch(
        self,
        problem: Problem,
        dbs: Iterable[DatabaseInstance],
        executor: ExecutorConfig | None = None,
    ) -> BatchDecision:
        """The certain answers over an instance stream, through one plan."""
        self._check_open()
        start = time.perf_counter()
        plan, hit, form = self._engine.route(problem)
        try:
            result = self._engine.run_batch(plan, dbs, executor=executor,
                                            form=form)
        except Exception as error:
            self._record_failure(plan, error)
            raise
        wall = time.perf_counter() - start
        record_span(
            "solve", wall,
            labels={"class": plan.fingerprint.digest,
                    "backend": plan.backend,
                    "batch": str(len(result.answers))},
        )
        self._warn_if_slow(plan, wall, instances=len(result.answers))
        return BatchDecision(
            answers=result.answers,
            fingerprint=plan.fingerprint.digest,
            raw_fingerprint=form.fingerprint.raw,
            verdict=plan.classification.verdict.name,
            backend=plan.backend,
            cache_hit=hit,
            wall_seconds=wall,
            execute_seconds=result.elapsed_seconds,
            mode=result.mode,
        )

    def _record_failure(self, plan: CertaintyPlan, error: Exception) -> None:
        """Count a failed decide on the plan's metrics and log it."""
        timeout = isinstance(error, TimeoutError)
        plan.metrics.record_error(timeout=timeout)
        log_event(
            _logger, logging.WARNING, "decide.error",
            fingerprint=plan.fingerprint.digest,
            backend=plan.backend,
            error=type(error).__name__,
            timeout=timeout or None,
        )

    def _warn_if_slow(
        self, plan: CertaintyPlan, wall: float, *, instances: int
    ) -> None:
        threshold = self.config.slow_decide_seconds
        if threshold and wall >= threshold:
            log_event(
                _logger, logging.WARNING, "decide.slow",
                fingerprint=plan.fingerprint.digest,
                backend=plan.backend,
                wall_ms=round(wall * 1e3, 3),
                instances=instances,
                threshold_ms=round(threshold * 1e3, 3),
            )

    # -- introspection and lifecycle ----------------------------------------

    def stats(self) -> EngineStats:
        """Cache counters plus one report per cached plan."""
        return self._engine.stats()

    def close(self) -> None:
        """Release every prepared solver; the session becomes unusable."""
        self._closed = True
        if self._store is not None:
            self._store.close()
        self._engine.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Session({state}, fo_backend={self.config.fo_backend!r}, "
            f"plans={self._engine.cache_stats().size})"
        )


def connect(
    *,
    fo_backend: str = "memory",
    plan_cache_size: int = 128,
    executor: ExecutorConfig | None = None,
    registry: BackendRegistry | None = None,
    sat_fallback: bool = False,
) -> Session:
    """Open a :class:`Session` — the ``sqlite3.connect`` of this library.

    ``sat_fallback=True`` routes the coNP-hard ``FK = ∅`` residue to the
    ``sat-repairs`` CNF backend instead of subset-repair enumeration.
    """
    return Session(
        SessionConfig(
            plan_cache_size=plan_cache_size,
            fo_backend=fo_backend,
            executor=executor or ExecutorConfig(),
            registry=registry,
            sat_fallback=sat_fallback,
        )
    )


def prepare(
    problem: Problem,
    *,
    fo_backend: str = "memory",
    registry: BackendRegistry | None = None,
) -> PreparedSolver:
    """The two-phase lifecycle, stand-alone: canonicalize + recognize
    *problem* and return its prepared solver.

    Unlike :meth:`Session.prepare` the caller owns the result: reuse it
    across any number of ``decide(db)`` calls and ``close()`` it (it is a
    context manager) when done.  The underlying solver is built against
    the problem's canonical spelling; the returned wrapper transports each
    instance through the recorded renaming, so callers keep passing
    instances spelled like *problem*.
    """
    from ..engine.canonical import TransportingSolver

    options = RouteOptions(fo_backend=fo_backend)
    form = problem.canonical
    recognition = (registry or default_registry()).recognize(form, options)
    return TransportingSolver(recognition.factory(), form)
