"""repro.api — the public facade: Problems in, Decisions out.

The canonical entry point since the API redesign.  The three nouns:

* :class:`Problem` — a frozen, serializable ``CERTAINTY(q, FK)`` value
  (``Problem.of(...)``, ``to_json``/``from_json``, canonical fingerprint);
* :class:`Session` — a context-managed facade owning a plan-caching
  engine (``classify`` / ``rewrite`` / ``explain`` / ``decide`` /
  ``decide_batch`` / ``prepare`` / ``stats``), opened with
  :func:`connect`;
* :class:`Decision` / :class:`BatchDecision` — structured results carrying
  the verdict plus provenance (backend, trichotomy class, cache hit, wall
  time), JSON-serializable.

Quick use::

    from repro.api import Problem, connect

    problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
    with connect(fo_backend="sql") as session:
        decision = session.decide(problem, db)         # Decision, truthy
        batch = session.decide_batch(problem, dbs)     # one warm plan

Backends are pluggable through the
:class:`~repro.engine.registry.BackendRegistry` (:func:`default_registry`),
and :func:`prepare` exposes the two-phase prepared-solver lifecycle
stand-alone.

(`Session` & friends are provided lazily via PEP 562: this package's
eager surface — :class:`Problem`, :class:`Decision` — is import-cycle-free
so that :mod:`repro.engine` itself can depend on it.)
"""

from ..exceptions import BackendRegistryError, ProblemFormatError
from .decision import BatchDecision, Decision
from .problem import Problem, as_problem

__all__ = [
    "BackendRegistry",
    "BackendRegistryError",
    "BackendSpec",
    "BatchDecision",
    "Decision",
    "Problem",
    "ProblemFormatError",
    "RouteOptions",
    "Session",
    "SessionConfig",
    "as_problem",
    "connect",
    "default_registry",
    "prepare",
]

_LAZY = {
    "Session": ("repro.api.session", "Session"),
    "SessionConfig": ("repro.api.session", "SessionConfig"),
    "connect": ("repro.api.session", "connect"),
    "prepare": ("repro.api.session", "prepare"),
    "BackendRegistry": ("repro.engine.registry", "BackendRegistry"),
    "BackendSpec": ("repro.engine.registry", "BackendSpec"),
    "RouteOptions": ("repro.engine.registry", "RouteOptions"),
    "default_registry": ("repro.engine.registry", "default_registry"),
}


def __getattr__(name: str):
    # Lazy: session pulls in the whole engine, and the engine's plan layer
    # imports repro.api.problem — eager imports here would be circular.
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(__all__)
