"""Structured, serializable decision results.

A bare ``bool`` tells a caller *what* was decided but not *how*; serving,
auditing, and cache-sharding all need the provenance.  :class:`Decision`
(one instance) and :class:`BatchDecision` (one plan over an instance
stream) carry the verdict plus

* the problem's canonical **class** fingerprint (``fingerprint`` — the
  shard/cache key, shared by every relation-renaming-isomorphic spelling)
  and the **spelling** fingerprint (``raw_fingerprint`` — identifying the
  exact spelling this request used: the renaming transported back),
* the trichotomy class Theorem 12 assigned,
* the backend the registry routed to,
* whether the plan came from the cache, and
* wall-clock time.

Both are frozen values with lossless ``to_dict``/``to_json`` (and
``from_dict`` for :class:`Decision`), so results can cross process
boundaries next to their :class:`~repro.api.Problem`s.  ``Decision`` is
truthy exactly when the answer is certain, so existing ``if
engine.decide(...)`` call shapes keep working after migrating to the
session facade.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from ..exceptions import ProblemFormatError


@dataclass(frozen=True, slots=True)
class Decision:
    """The certain answer on one instance, with provenance.

    ``fingerprint`` is the canonical class digest; ``raw_fingerprint`` the
    requesting spelling's digest (empty when the producer predates the
    class redesign — the wire format is backward compatible).
    """

    certain: bool
    fingerprint: str
    verdict: str
    backend: str
    cache_hit: bool
    wall_seconds: float
    raw_fingerprint: str = ""
    #: True when the answer came from ``repro.store`` incremental state
    #: (a version-matched memo or a delta-caught-up re-decide) rather
    #: than a from-scratch evaluation of the full instance.
    incremental: bool = False

    def __bool__(self) -> bool:
        return self.certain

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: object) -> "Decision":
        if not isinstance(data, dict):
            raise ProblemFormatError(
                f"decision document must be a JSON object, got "
                f"{type(data).__name__}"
            )
        try:
            return cls(
                certain=bool(data["certain"]),
                fingerprint=str(data["fingerprint"]),
                verdict=str(data["verdict"]),
                backend=str(data["backend"]),
                cache_hit=bool(data["cache_hit"]),
                wall_seconds=float(data["wall_seconds"]),
                raw_fingerprint=str(data.get("raw_fingerprint", "")),
                incremental=bool(data.get("incremental", False)),
            )
        except KeyError as missing:
            raise ProblemFormatError(
                f"decision document misses key {missing}"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "Decision":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as error:
            raise ProblemFormatError(f"invalid JSON: {error}") from error


@dataclass(frozen=True, slots=True)
class BatchDecision:
    """The certain answers of one plan over an instance stream."""

    answers: tuple[bool, ...]
    fingerprint: str  # canonical class digest
    verdict: str
    backend: str
    cache_hit: bool
    wall_seconds: float  # total facade time, plan compile/lookup included
    execute_seconds: float  # pure batch execution, the old `elapsed`
    mode: str  # what actually executed: serial / thread / process
    raw_fingerprint: str = ""  # the requesting spelling's digest

    @property
    def size(self) -> int:
        return len(self.answers)

    @property
    def certain_count(self) -> int:
        return sum(self.answers)

    @property
    def all_certain(self) -> bool:
        return all(self.answers)

    @property
    def per_second(self) -> float | None:
        """Execution throughput (compile cost excluded, as pre-redesign)."""
        if self.execute_seconds <= 0 or not self.answers:
            return None
        return len(self.answers) / self.execute_seconds

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["answers"] = list(self.answers)
        return data

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: object) -> "BatchDecision":
        if not isinstance(data, dict):
            raise ProblemFormatError(
                f"batch-decision document must be a JSON object, got "
                f"{type(data).__name__}"
            )
        answers = data.get("answers")
        if not isinstance(answers, (list, tuple)):
            raise ProblemFormatError(
                "batch-decision document needs an 'answers' list"
            )
        try:
            return cls(
                answers=tuple(bool(a) for a in answers),
                fingerprint=str(data["fingerprint"]),
                verdict=str(data["verdict"]),
                backend=str(data["backend"]),
                cache_hit=bool(data["cache_hit"]),
                wall_seconds=float(data["wall_seconds"]),
                execute_seconds=float(data["execute_seconds"]),
                mode=str(data["mode"]),
                raw_fingerprint=str(data.get("raw_fingerprint", "")),
            )
        except KeyError as missing:
            raise ProblemFormatError(
                f"batch-decision document misses key {missing}"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "BatchDecision":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as error:
            raise ProblemFormatError(f"invalid JSON: {error}") from error
