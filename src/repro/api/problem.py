"""The first-class problem object: ``CERTAINTY(q, FK)`` as one value.

The paper's object of study is the *problem* — a self-join-free Boolean
conjunctive query together with a set of unary foreign keys about it — yet
most code paths historically passed the two halves loose.  :class:`Problem`
bundles them into a frozen, hashable value with

* validation at construction (``FK`` must be *about* ``q``, Section 3.2),
* a cached canonical :class:`~repro.engine.fingerprint.Fingerprint` (the
  plan-cache and shard key), and
* lossless ``to_dict``/``from_dict``/``to_json``/``from_json`` round-trips,
  so problems can cross process boundaries — the prerequisite for sharded
  and remote serving.

The wire format is deliberately plain JSON: tagged term triples
(``["var", name]`` / ``["const", value]`` / ``["param", name]``), one
object per atom and per foreign key, plus the full schema (which may
declare relations beyond the query's, e.g. targets added via
``fk_set(..., extra_schema=...)``).  Only string and integer constants are
serializable — the same value domain as :mod:`repro.db.io`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Mapping

from ..core.atoms import Atom
from ..core.foreign_keys import ForeignKey, ForeignKeySet, parse_foreign_key
from ..core.query import ConjunctiveQuery, parse_atom
from ..core.schema import Schema, Signature
from ..core.terms import Constant, Parameter, Term, Variable
from ..exceptions import ProblemFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> api)
    from ..engine.canonical import CanonicalForm
    from ..engine.fingerprint import Fingerprint

_FORMAT = "repro/problem"
_VERSION = 1


def _term_to_obj(term: Term) -> list:
    if isinstance(term, Variable):
        return ["var", term.name]
    if isinstance(term, Parameter):
        return ["param", term.name]
    if isinstance(term, Constant):
        if isinstance(term.value, bool) or not isinstance(
            term.value, (str, int)
        ):
            raise ProblemFormatError(
                f"constant {term.value!r} is not serializable: only string "
                "and integer constants have a wire form"
            )
        return ["const", term.value]
    raise ProblemFormatError(f"unknown term kind {term!r}")


def _term_from_obj(obj: object) -> Term:
    if not (isinstance(obj, (list, tuple)) and len(obj) == 2):
        raise ProblemFormatError(f"malformed term {obj!r}: expected [tag, value]")
    tag, value = obj
    if tag == "var" and isinstance(value, str):
        return Variable(value)
    if tag == "param" and isinstance(value, str):
        return Parameter(value)
    if tag == "const" and isinstance(value, (str, int)) and not isinstance(
        value, bool
    ):
        return Constant(value)
    raise ProblemFormatError(f"malformed term {obj!r}: unknown tag or value")


@dataclass(frozen=True, eq=False)
class Problem:
    """One ``CERTAINTY(q, FK)`` problem: query + foreign keys (+ a name).

    Frozen and hashable; equality is structural on the query, the
    foreign-key set (including its schema) and the name.  Two problems that
    differ only by a consistent renaming of variables *or relations*
    compare unequal but share a :attr:`fingerprint` digest (the canonical
    class, see :attr:`canonical`) — the engine's notion of sameness.
    """

    query: ConjunctiveQuery
    fks: ForeignKeySet
    name: str = ""

    def __post_init__(self) -> None:
        self.fks.require_about(self.query)

    # -- construction --------------------------------------------------------

    @classmethod
    def of(
        cls,
        *atom_texts: str,
        fks: Iterable[str] = (),
        name: str = "",
        extra_schema: Schema | None = None,
    ) -> "Problem":
        """Build a problem from the compact text syntax.

        >>> Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"]).fingerprint
        Fingerprint(...)
        """
        query = ConjunctiveQuery(parse_atom(t) for t in atom_texts)
        schema = query.schema()
        if extra_schema is not None:
            schema = schema.merge(extra_schema)
        fk_set = ForeignKeySet([parse_foreign_key(t) for t in fks], schema)
        return cls(query, fk_set, name=name)

    # -- identity ------------------------------------------------------------

    @cached_property
    def canonical(self) -> "CanonicalForm":
        """The problem's renaming-isomorphism class (cached).

        Carries the canonical spelling, the invertible relation/variable
        renamings, the combined class+raw fingerprint, and the instance
        transport — the engine's routing key.
        """
        from ..engine.canonical import canonicalize

        return canonicalize(self)

    @cached_property
    def fingerprint(self) -> "Fingerprint":
        """The canonical problem fingerprint (cached).

        ``digest`` identifies the problem up to relation *and* variable
        renaming (the class digest — the plan-cache and shard key);
        ``raw`` is the spelling-level digest (alpha-invariant only).
        """
        return self.canonical.fingerprint

    @property
    def label(self) -> str:
        """Back-compat alias for the pre-`repro.api` ``solvers.Problem``."""
        return self.name or repr(self.query)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Problem):
            return NotImplemented
        return (
            self.query == other.query
            and self.fks == other.fks
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.query, self.fks.foreign_keys, self.name))

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"Problem({self.query!r}, {self.fks!r}{name})"

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-JSON-compatible dict losslessly encoding the problem."""
        schema = self.fks.schema
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "name": self.name,
            "atoms": [
                {
                    "relation": atom.relation,
                    "key_size": atom.key_size,
                    "terms": [_term_to_obj(t) for t in atom.terms],
                }
                for atom in self.query.atoms
            ],
            "foreign_keys": [
                {"source": fk.source, "position": fk.position,
                 "target": fk.target}
                for fk in self.fks  # ForeignKeySet iterates sorted
            ],
            "schema": {
                name: [schema[name].arity, schema[name].key_size]
                for name in sorted(schema)
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        """The problem as a JSON document (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: object) -> "Problem":
        """Rebuild a problem from :meth:`to_dict` output.

        Raises :class:`~repro.exceptions.ProblemFormatError` on any
        malformed input; other repro validation errors (self-joins, foreign
        keys not about the query, ...) propagate as themselves.
        """
        if not isinstance(data, Mapping):
            raise ProblemFormatError(
                f"problem document must be a JSON object, got "
                f"{type(data).__name__}"
            )
        if data.get("format") != _FORMAT:
            raise ProblemFormatError(
                f"not a problem document: format={data.get('format')!r} "
                f"(expected {_FORMAT!r})"
            )
        if data.get("version") != _VERSION:
            raise ProblemFormatError(
                f"unsupported problem version {data.get('version')!r} "
                f"(this library reads version {_VERSION})"
            )
        name = data.get("name", "")
        if not isinstance(name, str):
            raise ProblemFormatError(f"problem name must be a string, got {name!r}")
        atoms = []
        for entry in _require_list(data, "atoms"):
            if not isinstance(entry, Mapping):
                raise ProblemFormatError(f"malformed atom entry {entry!r}")
            try:
                relation = entry["relation"]
                key_size = entry["key_size"]
                terms = entry["terms"]
            except KeyError as missing:
                raise ProblemFormatError(
                    f"atom entry {entry!r} misses key {missing}"
                ) from None
            if not isinstance(relation, str) or not isinstance(key_size, int):
                raise ProblemFormatError(f"malformed atom entry {entry!r}")
            if not isinstance(terms, list):
                raise ProblemFormatError(
                    f"atom {relation!r}: terms must be a list"
                )
            atoms.append(
                Atom(relation, tuple(_term_from_obj(t) for t in terms),
                     key_size)
            )
        query = ConjunctiveQuery(atoms)
        signatures: dict[str, Signature] = {}
        schema_entries = data.get("schema", {})
        if not isinstance(schema_entries, Mapping):
            raise ProblemFormatError("problem schema must be an object")
        for rel, sig in schema_entries.items():
            if not (
                isinstance(rel, str)
                and isinstance(sig, (list, tuple))
                and len(sig) == 2
                and all(isinstance(n, int) for n in sig)
            ):
                raise ProblemFormatError(
                    f"malformed schema entry {rel!r}: {sig!r}"
                )
            signatures[rel] = Signature(sig[0], sig[1])
        schema = query.schema().merge(Schema(signatures))
        fks = []
        for entry in _require_list(data, "foreign_keys"):
            if not (
                isinstance(entry, Mapping)
                and isinstance(entry.get("source"), str)
                and isinstance(entry.get("position"), int)
                and isinstance(entry.get("target"), str)
            ):
                raise ProblemFormatError(
                    f"malformed foreign-key entry {entry!r}"
                )
            fks.append(
                ForeignKey(entry["source"], entry["position"], entry["target"])
            )
        return cls(query, ForeignKeySet(fks, schema), name=name)

    @classmethod
    def from_json(cls, text: str) -> "Problem":
        """Parse a problem from its JSON document form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ProblemFormatError(f"invalid JSON: {error}") from error
        return cls.from_dict(data)


def _require_list(data: Mapping, key: str) -> list:
    value = data.get(key)
    if not isinstance(value, list):
        raise ProblemFormatError(
            f"problem document key {key!r} must be a list, got "
            f"{type(value).__name__}"
        )
    return value


def as_problem(
    problem: "Problem | ConjunctiveQuery",
    fks: ForeignKeySet | None = None,
    name: str = "",
) -> "Problem":
    """Coerce ``(query, fks)`` call styles into a :class:`Problem`.

    The migration helper behind every facade entry point: new code passes a
    :class:`Problem`; old code keeps passing the pair.
    """
    if isinstance(problem, Problem):
        if fks is not None:
            raise TypeError("pass either a Problem or (query, fks), not both")
        return problem
    if fks is None:
        raise TypeError("a bare query needs its ForeignKeySet")
    return Problem(problem, fks, name=name)
