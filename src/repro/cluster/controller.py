"""The cluster controller: remote workers behind the serving surface.

Two classes:

* :class:`ClusterEngine` — a :class:`~repro.serve.fleet.BaseWorkerFleet`
  whose worker provider is a
  :class:`~repro.cluster.membership.ClusterMembership`: the same ring
  routing, retried wire calls and replay-safety gating as the local
  process fleet, but over workers that *registered themselves* and can
  vanish without a waitpid.  Membership changes drive the live ring
  rebalance: instance-ref migration (versions preserved — the PR 7
  resize path) and plan-cache warmup on the receiving workers.

* :class:`ClusterServer` — a :class:`~repro.serve.CertaintyServer`
  subclass that serves *clients and workers on the same socket*: the
  usual decide/stats surface routed through the :class:`ClusterEngine`,
  plus the control-plane verbs (``register`` / ``deregister`` /
  ``heartbeat``) and ``repro_cluster_*`` telemetry.

**Rebalance mechanics.**  The ring is keyed by worker *name*
(:class:`~repro.serve.shard.HashRing` with ``names=``), so a membership
change remaps only the joining/leaving member's ~1/N share.  On join,
refs that now hash to the joiner are snapshotted from their current
owners and re-``put`` (version preserved) before being dropped at the
source.  On graceful leave (``deregister``), the leaver's refs are
snapshotted *while it is still addressable*, the ring shrinks, and the
snapshots land on the survivors.  On eviction (heartbeat timeout) there
is nothing to read from the dead worker — but with replication on (the
default), every ref it owned already has a replica on its ring
successor, which by the successor property is exactly the worker the
ring now routes that ref to: the post-eviction repair pass *promotes*
those replicas in place (version preserved), re-replicates to the new
successors, and ref decides keep answering.  ``unknown-instance`` on
crash is the contract only with ``replication=False`` — or when both
the owner and its successor die inside one repair interval (a double
failure).  In every case the controller replays
its hottest class fingerprints (an LRU it maintains as a side effect of
routing) at the new owners via the ``explain`` verb, which compiles and
caches the plan worker-side — so the first post-rebalance decide of a
hot class meets a warm cache.

Decides issued *during* a rebalance never hang and are never silently
dropped: routing reads one volatile ring reference, wire calls carry
timeouts, and a request that lands on a just-removed worker surfaces a
structured ``unavailable``/``unknown-instance`` envelope the client can
retry.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict, deque

from ..api.problem import Problem
from ..engine.engine import EngineStats, merge_engine_stats
from ..exceptions import RemoteError, ServeProtocolError
from ..obs.log import get_logger, log_event
from ..serve.autoscale import AutoscaleConfig, Autoscaler
from ..serve.fleet import BaseWorkerFleet, FleetConfig
from ..serve.protocol import Request
from ..serve.server import CertaintyServer, ServerConfig
from ..serve.shard import HashRing, ShardStats, ref_digest
from .membership import ClusterMembership, RemoteWorkerHandle
from .replication import RepairAction, plan_replica_repairs

_logger = get_logger("cluster.controller")


class ClusterEngine(BaseWorkerFleet):
    """The fleet surface over registered remote workers.

    Starts empty: until the first worker registers, every decide answers
    a structured ``unavailable`` envelope (never a hang).  A daemon
    eviction loop sweeps the membership at a fraction of the heartbeat
    timeout so a crashed worker leaves the ring within ~one timeout.
    """

    def __init__(
        self,
        membership: ClusterMembership | None = None,
        *,
        config: FleetConfig | None = None,
        auth_secret: str | None = None,
        client_ssl=None,
        hot_classes: int = 128,
        replication: bool = True,
        repair_interval: float = 30.0,
    ):
        self._membership = membership or ClusterMembership()
        super().__init__(
            self._membership,
            None,  # ring materializes with the first registration
            config=config,
            client_auth=auth_secret,
            client_ssl=client_ssl,
        )
        self._rebalance_lock = threading.RLock()
        self._hot_lock = threading.Lock()
        self._hot: OrderedDict[str, Problem] = OrderedDict()
        self._hot_limit = hot_classes
        self._target_width: int | None = None
        self._rebalances = 0
        self._warmed = 0
        self._replication = replication
        self._mirror_cond = threading.Condition()
        self._mirror_tasks: deque[tuple] = deque()
        self._mirror_pending = 0
        self._replicated = 0       # replica snapshots/deltas delivered
        self._replica_catchups = 0  # delta fell back to a snapshot
        self._replica_failures = 0  # mirror/repair steps that gave up
        self._promotions = 0       # replicas promoted to primaries
        self._repairs = 0          # repair-plan actions executed
        self._repair_pending = False  # a pass was deferred or partly failed
        self._repair_interval = repair_interval
        self._last_repair = time.monotonic()
        self._evict_stop = threading.Event()
        self._mirror_thread: threading.Thread | None = None
        if replication:
            self._mirror_thread = threading.Thread(
                target=self._mirror_loop, name="repro-cluster-mirror",
                daemon=True,
            )
            self._mirror_thread.start()
        self._evict_thread = threading.Thread(
            target=self._eviction_loop, name="repro-cluster-evict",
            daemon=True,
        )
        self._evict_thread.start()

    @property
    def membership(self) -> ClusterMembership:
        return self._membership

    # -- routing (hot-class tracking rides along) ----------------------------

    def shard_for(self, problem: Problem) -> int:
        digest = problem.fingerprint.digest
        if self._hot_limit > 0:
            with self._hot_lock:
                self._hot[digest] = problem
                self._hot.move_to_end(digest)
                while len(self._hot) > self._hot_limit:
                    self._hot.popitem(last=False)
        return super().shard_for(problem)

    # -- replication: the write-path mirror ----------------------------------

    def _mutation_gate(self):
        """Registry mutations serialize against whole-ring rebalances:
        route-and-apply is atomic under the rebalance lock, so a patch
        arriving during a member's leave either lands before the leaver's
        refs are snapshotted (and migrates with them) or routes by the
        post-shrink ring to the survivor — never into the migration
        window where it would be applied and then silently dropped."""
        return self._rebalance_lock

    def _on_mutation(self, request: Request, result: dict) -> None:
        """Mirror one just-applied primary mutation to the ref's ring
        successor, asynchronously: the client's ack never waits on the
        replica hop.  Tasks resolve owner/successor at execution time, so
        a task that outlives a rebalance mirrors to the *current*
        successor (any stray it leaves behind is swept by the next repair
        pass)."""
        if not self._replication:
            return
        ref = request.instance_ref
        verb = request.verb
        if verb == "instance_put":
            task = ("snapshot", ref)
        elif verb == "instance_patch":
            version = (result.get("instance") or {}).get("version")
            task = ("delta", ref, request.delta, version)
        else:  # instance_drop
            task = ("drop", ref)
        with self._mirror_cond:
            self._mirror_tasks.append(task)
            self._mirror_pending += 1
            self._mirror_cond.notify_all()

    def _mirror_loop(self) -> None:
        while True:
            with self._mirror_cond:
                while not self._mirror_tasks:
                    if self._evict_stop.is_set():
                        return
                    self._mirror_cond.wait(0.2)
                task = self._mirror_tasks.popleft()
            try:
                self._mirror(task)
            except Exception as error:
                self._replica_failures += 1
                log_event(
                    _logger, logging.WARNING, "cluster.replicate.failed",
                    ref=task[1], kind=task[0], error=type(error).__name__,
                )
            finally:
                with self._mirror_cond:
                    self._mirror_pending -= 1
                    self._mirror_cond.notify_all()

    def _mirror(self, task: tuple) -> None:
        kind, ref = task[0], task[1]
        ring = self._ring
        if ring is None:
            return
        digest = ref_digest(ref)
        succ = ring.successor_for(digest)
        if succ is None:
            return  # single-member ring: nowhere distinct to mirror
        if kind == "drop":
            self._request(succ, "replicate", instance_ref=ref)
            return
        if kind == "delta":
            _, _, delta, version = task
            if delta is not None and version is not None:
                try:
                    self._request(
                        succ, "replicate", instance_ref=ref,
                        delta=delta, version=version,
                    )
                    self._replicated += 1
                    return
                except RemoteError as error:
                    if error.code not in ("conflict", "unknown-instance"):
                        raise
                    self._replica_catchups += 1
            # fall through: stale/missing replica → snapshot catch-up
        owner = ring.shard_for(digest)
        try:
            doc = self._request(owner, "instance_get", instance_ref=ref)
        except RemoteError as error:
            if error.code == "unknown-instance":
                # the ref vanished between mutation and mirror (dropped,
                # or evicted by the store LRU): retract the replica too
                self._request(succ, "replicate", instance_ref=ref)
                return
            raise
        self._request(
            succ, "replicate", instance_ref=ref,
            instance=doc.get("instance"), version=doc.get("version"),
        )
        self._replicated += 1

    def flush_replication(self, timeout: float | None = None) -> bool:
        """Block until every queued mirror task has executed (the
        rolling-restart freshness gate).  True iff the queue drained
        inside *timeout* seconds (no timeout: wait forever)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mirror_cond:
            while self._mirror_pending > 0:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._mirror_cond.wait(
                    0.5 if remaining is None else min(remaining, 0.5)
                )
            return True

    @property
    def replication_pending(self) -> int:
        with self._mirror_cond:
            return self._mirror_pending

    # -- replication: placement repair ---------------------------------------

    def _repair_placements(self) -> None:
        """Census the fleet and restore one-primary-on-owner plus
        one-replica-on-successor for every ref (caller holds the
        rebalance lock).  Runs synchronously at the end of every
        membership change: after an eviction, the orphaned refs' promote
        actions have executed before ``evict_stale`` returns, so the
        next ref decide answers from the promoted replica.

        The pass is all-or-nothing on the census: planning against a
        live ring member whose inventory could not be read would treat
        it as holding nothing, and the resulting ``copy_primary`` would
        wholesale-replace whatever (possibly newer) copy it actually
        holds.  A census failure therefore defers the whole pass — the
        eviction loop retries it on a later sweep."""
        ring = self._ring
        if not self._replication or ring is None:
            self._last_repair = time.monotonic()
            return
        shard_of = {name: i for i, name in enumerate(ring.names)}
        primaries: dict[str, dict[str, int]] = {}
        replicas: dict[str, dict[str, int]] = {}
        for name, shard in shard_of.items():
            try:
                held = self._request(shard, "instance_list")
                mirrored = self._request(shard, "replica_inventory")
            except Exception as error:
                self._repair_pending = True
                log_event(
                    _logger, logging.WARNING, "cluster.repair.census",
                    worker=name, error=type(error).__name__, deferred=True,
                )
                return
            primaries[name] = {
                info["ref"]: info["version"]
                for info in held.get("instances") or []
            }
            replicas[name] = {
                info["ref"]: info["version"]
                for info in mirrored.get("replicas") or []
            }
        plan = plan_replica_repairs(ring, primaries, replicas)
        executed = promoted = 0
        failed_refs: set[str] = set()
        for action in plan:
            if (
                action.kind in ("drop_primary", "drop_replica")
                and action.ref in failed_refs
            ):
                # an earlier copy/promote/replicate for this ref did not
                # land, so the "stray" this drop targets may hold the
                # freshest (possibly only) surviving copy — keep it and
                # let the retry pass converge
                continue
            try:
                if self._execute_repair(action, shard_of):
                    promoted += 1
                executed += 1
            except Exception as error:
                failed_refs.add(action.ref)
                self._replica_failures += 1
                log_event(
                    _logger, logging.WARNING, "cluster.repair.failed",
                    kind=action.kind, worker=action.worker, ref=action.ref,
                    error=type(error).__name__,
                )
        self._repairs += executed
        self._promotions += promoted
        self._repair_pending = bool(failed_refs)
        self._last_repair = time.monotonic()
        if plan:
            log_event(
                _logger, logging.INFO, "cluster.repair",
                actions=executed, planned=len(plan), promoted=promoted,
                epoch=self._membership.ring_epoch,
            )

    def repair_now(self, *, block: bool = True) -> bool:
        """One repair pass outside a membership change: the eviction
        loop's retry for a deferred or partly failed pass, and the
        periodic anti-entropy sweep that re-establishes replicas the
        workers' side-stores LRU-evicted under byte pressure.  The loop
        passes ``block=False`` so a rebalance lock wedged by a mutation
        mid-wire never stalls its sweeps (the retry condition stays set,
        so a skipped pass runs on a later sweep); ``False`` means the
        pass was skipped, not that it failed."""
        if not self._rebalance_lock.acquire(blocking=block):
            return False
        try:
            self._repair_placements()
        finally:
            self._rebalance_lock.release()
        return True

    def _execute_repair(
        self, action: RepairAction, shard_of: dict[str, int]
    ) -> bool:
        """Run one repair action; True iff it promoted a replica."""
        shard = shard_of[action.worker]
        ref = action.ref
        if action.kind == "promote":
            result = self._request(shard, "promote", instance_ref=ref)
            return bool(result.get("promoted"))
        if action.kind in ("copy_primary", "replicate"):
            source = shard_of[action.source]
            read = "instance_get" if action.source_primary else "replica_get"
            doc = self._request(source, read, instance_ref=ref)
            if action.kind == "copy_primary":
                self._request(
                    shard, "instance_put", instance_ref=ref,
                    instance=doc.get("instance"),
                    version=doc.get("version"),
                )
            else:
                self._request(
                    shard, "replicate", instance_ref=ref,
                    instance=doc.get("instance"),
                    version=doc.get("version"),
                )
                self._replicated += 1
            return False
        if action.kind == "drop_primary":
            self._request(shard, "instance_drop", instance_ref=ref)
            return False
        self._request(shard, "replicate", instance_ref=ref)  # drop_replica
        return False

    # -- membership changes → ring rebalance ---------------------------------

    def register_worker(
        self,
        name: str,
        host: str,
        port: int,
        *,
        capacity: int = 1,
        agent_generation: int = 0,
    ) -> tuple[RemoteWorkerHandle, bool]:
        """Admit a worker and rebalance: ~1/N of the ring (refs included)
        moves to a joiner; a re-registration keeps the ring but redials
        connections and re-warms the (now cold) worker's hot classes."""
        with self._rebalance_lock:
            old_ring = self._ring
            handle, joined = self._membership.register(
                name, host, port, capacity=capacity,
                agent_generation=agent_generation,
            )
            names = self._membership.ring_names()
            new_ring = HashRing(
                len(names), replicas=self.config.replicas, names=names
            )
            moves = []
            if joined and old_ring is not None:
                # survivors keep their indexes (joins append), so the
                # resize collector applies as-is: snapshot every ref whose
                # owner under the new ring is not its current holder
                moves = self._collect_moves(
                    old_ring.n_shards, new_ring.n_shards, new_ring
                )
            with self._state_lock:
                self._ring = new_ring
            if moves:
                self._migrate(moves, new_ring.n_shards)
            if joined:
                self._warm_moved(old_ring, new_ring)
            else:
                # same ranges, fresh process: its plan cache is empty
                self._warm_digests(
                    [
                        digest for digest in self._hot_digests()
                        if new_ring.shard_for(digest) == handle.shard
                    ],
                    new_ring,
                )
            self._repair_placements()
            self._rebalances += 1
            log_event(
                _logger, logging.INFO, "cluster.rebalance",
                cause="join" if joined else "rejoin", worker=name,
                workers=new_ring.n_shards, moved_refs=len(moves),
                epoch=self._membership.ring_epoch,
            )
            return handle, joined

    def deregister_worker(self, name: str, *, stop: bool = False) -> dict:
        """Graceful drain: snapshot the leaver's refs while it still
        answers, shrink the ring, re-home the refs on the survivors."""
        with self._rebalance_lock:
            leaver = self._membership.handle_for(name)
            if leaver is None:
                return {
                    "removed": False,
                    "workers": self._membership.n_workers,
                    "ring_epoch": self._membership.ring_epoch,
                }
            old_ring = self._ring
            survivors = [
                ring_name for ring_name in self._membership.ring_names()
                if ring_name != name
            ]
            new_ring = (
                HashRing(
                    len(survivors), replicas=self.config.replicas,
                    names=survivors,
                )
                if survivors else None
            )
            moves: list[dict] = []
            if new_ring is not None:
                moves = self._collect_leaver_refs(leaver.shard, new_ring)
            if stop:
                try:
                    self._request(leaver.shard, "shutdown")
                except Exception as error:
                    log_event(
                        _logger, logging.WARNING, "cluster.drain.shutdown",
                        worker=name, error=type(error).__name__,
                    )
            self._membership.deregister(name)
            self._swap_ring(new_ring)
            for move in moves:
                try:
                    self._request(
                        move["target"], "instance_put",
                        instance_ref=move["ref"],
                        instance=move["instance"],
                        version=move["version"],
                    )
                except Exception as error:
                    log_event(
                        _logger, logging.WARNING, "cluster.migrate.put_failed",
                        shard=move["target"], ref=move["ref"],
                        error=type(error).__name__,
                    )
            if new_ring is not None:
                self._warm_moved(old_ring, new_ring)
            self._repair_placements()
            self._rebalances += 1
            log_event(
                _logger, logging.INFO, "cluster.rebalance",
                cause="leave", worker=name,
                workers=len(survivors), moved_refs=len(moves),
                epoch=self._membership.ring_epoch,
            )
            return {
                "removed": True,
                "workers": len(survivors),
                "ring_epoch": self._membership.ring_epoch,
            }

    def evict_stale(self) -> list[RemoteWorkerHandle]:
        """Heartbeat-timeout eviction: the membership drops the silent
        workers, the ring shrinks, and the survivors that inherited their
        ranges get their plan caches warmed.  Nothing can be read from
        the dead workers — but with replication on, every ref they owned
        has a replica on its ring successor, and the successor property
        makes that successor exactly the ref's *new* owner: the repair
        pass below promotes those replicas in place (version preserved)
        and re-replicates to the new successors before this method
        returns, so ref decides keep answering.  Only with
        ``replication=False`` (or after a double failure) do the evicted
        workers' refs answer ``unknown-instance`` until clients re-put."""
        stale = self._membership.stale_members()
        if not stale:
            # nothing to evict — and crucially, no reason to queue behind
            # the rebalance lock, which a mutation wedged on a frozen
            # worker's socket may be holding for its full wire timeout.
            # An idle sweep that blocked here would wedge the eviction
            # loop itself, leaving no thread to run the abort below once
            # the worker does go stale.  (The peek can miss a member
            # going stale this very instant; the next sweep gets it.)
            return []
        # break any request still blocked on a doomed worker's socket (a
        # frozen process accepts but never answers) *before* taking the
        # rebalance lock: a mutation wedged mid-wire holds that lock
        # through the mutation gate, so aborting first is what lets this
        # sweep — and every queued mutation, rebalance and eviction
        # behind it — proceed now instead of after the full request
        # timeout
        self._abort_connections({handle.generation for handle in stale})
        with self._rebalance_lock:
            evicted = self._membership.evict_stale()
            if not evicted:
                return []
            old_ring = self._ring
            names = self._membership.ring_names()
            new_ring = (
                HashRing(
                    len(names), replicas=self.config.replicas, names=names
                )
                if names else None
            )
            self._swap_ring(new_ring)
            # catch any connection that went stale between the pre-lock
            # peek and the authoritative eviction (idempotent: already
            # aborted generations are simply absent from the cache)
            self._abort_connections(
                {handle.generation for handle in evicted}
            )
            if new_ring is not None:
                self._warm_moved(old_ring, new_ring)
            self._repair_placements()
            self._rebalances += 1
            log_event(
                _logger, logging.WARNING, "cluster.rebalance",
                cause="eviction",
                workers=len(names),
                evicted=[handle.name for handle in evicted],
                epoch=self._membership.ring_epoch,
            )
            return evicted

    def _swap_ring(self, new_ring: HashRing | None) -> None:
        """Install the post-change ring and discard now-out-of-range
        cached connections (in-range entries self-heal: connection
        caching keys on the globally unique registration generation, so
        an index that now names a different worker redials on first
        use)."""
        width = new_ring.n_shards if new_ring is not None else 0
        with self._state_lock:
            self._ring = new_ring
            for shard in list(self._clients):
                if shard >= width:
                    _, client = self._clients.pop(shard)
                    try:
                        client.close()
                    except OSError:
                        pass

    def _collect_leaver_refs(
        self, leaver_shard: int, new_ring: HashRing
    ) -> list[dict]:
        """Snapshot every ref the leaver holds, targeting post-shrink
        indexes (no drop needed — the source is leaving the fleet)."""
        moves: list[dict] = []
        try:
            payload = self._request(leaver_shard, "instance_list")
        except Exception as error:
            log_event(
                _logger, logging.WARNING, "cluster.migrate.list_failed",
                shard=leaver_shard, error=type(error).__name__,
            )
            return moves
        for info in payload.get("instances") or []:
            ref = info.get("ref")
            if not isinstance(ref, str) or not ref:
                continue
            try:
                doc = self._request(
                    leaver_shard, "instance_get", instance_ref=ref
                )
            except Exception as error:
                log_event(
                    _logger, logging.WARNING, "cluster.migrate.snapshot",
                    shard=leaver_shard, ref=ref, error=type(error).__name__,
                )
                continue
            moves.append({
                "ref": ref,
                "target": new_ring.shard_for(ref_digest(ref)),
                "version": doc.get("version"),
                "instance": doc.get("instance"),
            })
        return moves

    # -- plan-cache warmup ----------------------------------------------------

    def _hot_digests(self) -> list[str]:
        with self._hot_lock:
            return list(self._hot)

    def _warm_moved(
        self, old_ring: HashRing | None, new_ring: HashRing
    ) -> None:
        """Warm every hot class whose owning *worker* changed (ownership
        compares by name — an index shuffle alone moves nothing)."""
        moved = []
        for digest in self._hot_digests():
            new_shard = new_ring.shard_for(digest)
            if old_ring is not None:
                old_name = old_ring.names[old_ring.shard_for(digest)]
                if old_name == new_ring.names[new_shard]:
                    continue
            moved.append(digest)
        self._warm_digests(moved, new_ring)

    def _warm_digests(self, digests, new_ring: HashRing) -> None:
        """Replay hot plan fingerprints at their (new) owners: ``explain``
        compiles and caches the plan worker-side, so the warmup is one
        cheap pure call per class — no instance data moves."""
        warmed = 0
        for digest in digests:
            with self._hot_lock:
                problem = self._hot.get(digest)
            if problem is None:
                continue
            try:
                self._request(
                    new_ring.shard_for(digest), "explain", problem=problem
                )
                warmed += 1
            except Exception as error:
                log_event(
                    _logger, logging.DEBUG, "cluster.warmup.failed",
                    digest=digest[:12], error=type(error).__name__,
                )
        if warmed:
            self._warmed += warmed
            log_event(
                _logger, logging.INFO, "cluster.warmup",
                plans=warmed, epoch=self._membership.ring_epoch,
            )

    # -- resize (the autoscaler's and `repro fleet resize`'s entry) ----------

    def resize(self, n_workers: int) -> "ClusterEngine":
        """Shrink by draining surplus members (youngest first — graceful,
        refs migrate); grow by *recording* the target width — a
        controller cannot spawn machines, so growth happens when
        operators (or an orchestrator watching ``target_workers``) start
        more ``repro serve --join`` workers."""
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        with self._rebalance_lock:
            self._target_width = n_workers
            names = self._membership.ring_names()
            if n_workers >= len(names):
                if n_workers > len(names):
                    log_event(
                        _logger, logging.INFO, "cluster.resize.waiting",
                        workers=len(names), target=n_workers,
                    )
                return self
            for name in reversed(names[n_workers:]):
                self.deregister_worker(name, stop=True)
            return self

    # -- introspection ---------------------------------------------------------

    def stats(self) -> tuple[ShardStats, ...]:
        """Every *reachable* worker's engine stats.  Unlike the local
        fleet (where the supervisor respawns a dead worker under the
        stats call), a crashed remote worker stays dead until evicted —
        and an operator must be able to inspect a cluster *during* that
        window, so an unreachable worker is skipped, not fatal."""
        entries = []
        for shard in range(self.n_shards):
            try:
                payload = self._request(shard, "stats")
            except Exception as error:
                log_event(
                    _logger, logging.DEBUG, "cluster.stats.skipped",
                    shard=shard, error=type(error).__name__,
                )
                continue
            merged = merge_engine_stats(
                EngineStats.from_dict(entry)
                for entry in payload.get("shards") or []
            )
            entries.append(ShardStats(shard=shard, stats=merged))
        return tuple(entries)

    def cluster_status(self) -> dict:
        """The ``cluster`` block of the controller's ``stats`` verb."""
        return {
            **self._membership.status(),
            "target_workers": self._target_width,
            "rebalances": self._rebalances,
            "warmed_plans": self._warmed,
            "hot_classes": len(self._hot),
            "replication": {
                "enabled": self._replication,
                "pending": self.replication_pending,
                "replicated": self._replicated,
                "catchups": self._replica_catchups,
                "promotions": self._promotions,
                "repairs": self._repairs,
                "failures": self._replica_failures,
                "repair_pending": self._repair_pending,
            },
        }

    # -- the eviction loop -----------------------------------------------------

    def _eviction_loop(self) -> None:
        interval = max(0.05, self._membership.heartbeat_timeout / 4)
        while not self._evict_stop.wait(interval):
            try:
                self.evict_stale()
                if self._replication and (
                    self._repair_pending
                    or time.monotonic() - self._last_repair
                    >= self._repair_interval
                ):
                    self.repair_now(block=False)
            except Exception as error:  # a failed sweep must not kill the loop
                log_event(
                    _logger, logging.WARNING, "cluster.evict.sweep_failed",
                    error=type(error).__name__, detail=str(error),
                )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._evict_stop.set()
        with self._mirror_cond:  # wake the mirror thread to observe stop
            self._mirror_cond.notify_all()
        super().close()
        self._evict_thread.join(timeout=5)
        if self._mirror_thread is not None:
            self._mirror_thread.join(timeout=5)


class ClusterServer(CertaintyServer):
    """A controller front: the full serving surface over a
    :class:`ClusterEngine`, plus the registration verbs.

    Workers and clients share the listener (and the shared-secret
    handshake — configure ``auth_secret`` on any non-loopback bind).
    ``autoscale`` drives :meth:`ClusterEngine.resize`: scale-down drains
    real workers; scale-up records ``target_workers`` for orchestrators.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        membership: ClusterMembership | None = None,
        fleet_config: FleetConfig | None = None,
        autoscale: AutoscaleConfig | None = None,
        hot_classes: int = 128,
        replication: bool = True,
    ):
        config = config or ServerConfig()
        if config.processes > 0:
            raise ValueError(
                "a cluster controller routes over registered remote "
                "workers; processes must be 0"
            )
        self._membership = membership or ClusterMembership()
        self._fleet_config = fleet_config or FleetConfig()
        self._hot_classes = hot_classes
        self._replication_enabled = replication
        super().__init__(config)
        if autoscale is not None:
            self._autoscaler = Autoscaler(
                autoscale,
                resize=self._sharded.resize,
                initial_workers=max(1, self._sharded.n_shards),
            )

    def _build_engine(self):
        return ClusterEngine(
            self._membership,
            config=self._fleet_config,
            auth_secret=self.config.auth_secret,
            hot_classes=self._hot_classes,
            replication=self._replication_enabled,
        )

    def _build_store(self):
        return None  # every ref lives on its owning worker's registry slice

    @property
    def cluster_engine(self) -> ClusterEngine:
        return self._sharded

    # -- the control-plane verbs ----------------------------------------------

    async def _dispatch(self, request, offload: bool = False) -> dict:
        verb = request.verb
        if verb == "register":
            worker = self._require_worker(request, "name", "host", "port")
            handle, joined = await self._run_on_pool(
                lambda: self._sharded.register_worker(
                    str(worker["name"]),
                    str(worker["host"]),
                    int(worker["port"]),
                    capacity=int(worker.get("capacity") or 1),
                    agent_generation=int(worker.get("generation") or 0),
                )
            )
            return {
                "worker": handle.to_dict(),
                "joined": joined,
                "workers": self._membership.n_workers,
                "ring_epoch": self._membership.ring_epoch,
            }
        if verb == "deregister":
            worker = self._require_worker(request, "name")
            return await self._run_on_pool(
                lambda: self._sharded.deregister_worker(
                    str(worker["name"]), stop=bool(worker.get("stop"))
                )
            )
        if verb == "heartbeat":
            worker = self._require_worker(request, "name")
            known = self._membership.heartbeat(
                str(worker["name"]),
                int(worker.get("generation") or 0),
            )
            return {
                "known": known,
                "workers": self._membership.n_workers,
                "ring_epoch": self._membership.ring_epoch,
            }
        return await super()._dispatch(request, offload=offload)

    @staticmethod
    def _require_worker(request, *required: str) -> dict:
        worker = request.worker
        if not isinstance(worker, dict):
            raise ServeProtocolError(
                f"{request.verb!r} needs a 'worker' object"
            )
        for key in required:
            if not worker.get(key):
                raise ServeProtocolError(
                    f"{request.verb!r} needs worker.{key}"
                )
        return worker

    # -- observability ----------------------------------------------------------

    async def _stats(self) -> dict:
        result = await super()._stats()
        result["server"]["cluster"] = await self._run_on_pool(
            self._sharded.cluster_status
        )
        return result

    async def _prom_metrics(self) -> dict:
        page = await super()._prom_metrics()
        status = await self._run_on_pool(self._sharded.cluster_status)
        lines = []
        replication = status["replication"]
        for name, help_text, value in (
            ("workers", "Registered live workers.", status["workers"]),
            ("ring_epoch", "Membership change counter.",
             status["ring_epoch"]),
            ("target_workers", "Desired width recorded by resize.",
             status["target_workers"] or 0),
            ("hot_classes", "Problem classes tracked for warmup.",
             status["hot_classes"]),
            ("replication_pending", "Queued replica mirror tasks.",
             replication["pending"]),
        ):
            lines.append(f"# HELP repro_cluster_{name} {help_text}")
            lines.append(f"# TYPE repro_cluster_{name} gauge")
            lines.append(f"repro_cluster_{name} {value}")
        for name, help_text, value in (
            ("evictions", "Workers evicted on heartbeat timeout.",
             status["evictions"]),
            ("rebalances", "Ring rebalances (join/leave/eviction).",
             status["rebalances"]),
            ("warmed_plans", "Plans replayed into receiving workers.",
             status["warmed_plans"]),
            ("replications", "Replica snapshots and deltas delivered.",
             replication["replicated"]),
            ("replica_catchups", "Replica deltas upgraded to snapshots.",
             replication["catchups"]),
            ("promotions", "Replicas promoted to primaries.",
             replication["promotions"]),
            ("replica_repairs", "Placement repair actions executed.",
             replication["repairs"]),
            ("replica_failures", "Mirror or repair steps that gave up.",
             replication["failures"]),
        ):
            lines.append(f"# HELP repro_cluster_{name}_total {help_text}")
            lines.append(f"# TYPE repro_cluster_{name}_total counter")
            lines.append(f"repro_cluster_{name}_total {value}")
        page["exposition"] = "\n".join(lines) + "\n" + page["exposition"]
        return page


def controller_factory(
    *,
    membership: ClusterMembership | None = None,
    fleet_config: FleetConfig | None = None,
    autoscale: AutoscaleConfig | None = None,
    hot_classes: int = 128,
    replication: bool = True,
):
    """A ``server_factory`` for :func:`repro.serve.run_server` /
    :class:`repro.serve.BackgroundServer` that builds a controller."""

    def factory(config: ServerConfig) -> ClusterServer:
        return ClusterServer(
            config,
            membership=membership,
            fleet_config=fleet_config,
            autoscale=autoscale,
            hot_classes=hot_classes,
            replication=replication,
        )

    return factory
