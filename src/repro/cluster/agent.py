"""The worker agent: an ordinary serving process that phones home.

``repro serve --join controller:port`` runs exactly the server a
standalone deployment runs — same verbs, same store slice, same plan
cache — plus this agent beside it: it **registers** the worker's
advertised address with the controller, **heartbeats** on a fixed
cadence so silence means death, and **re-registers** (with a bumped
agent generation) whenever the controller answers ``known: false`` —
the signal that the worker was evicted (e.g. it was partitioned past
the heartbeat timeout) and must rejoin.  Rejoining under the same name
reclaims the exact same ring ranges, so a blip costs a redial and a
plan-cache warmup, not a rebalance.

The agent is deliberately one-way: the controller never dials workers
it has not met, and a worker that cannot reach the controller keeps
serving whatever connections it already has — membership is for
*routing*, not for permission to exist.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

from ..obs.log import get_logger, log_event
from ..serve.client import ServeClient
from ..serve.server import BackgroundServer, ServerConfig

_logger = get_logger("cluster.agent")


@dataclass(frozen=True)
class AgentConfig:
    """How a worker joins and stays joined to its controller."""

    controller_host: str
    controller_port: int
    name: str | None = None  # default: worker-<host>-<port> after bind
    advertise_host: str | None = None  # default: the worker's bind host
    capacity: int = 1
    heartbeat_seconds: float = 1.0
    auth_secret: str | None = None  # the fleet's shared secret
    retry_seconds: float = 1.0  # reconnect backoff to the controller
    request_timeout: float = 10.0  # per control-plane wire call

    def __post_init__(self) -> None:
        if self.heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be positive")
        if self.retry_seconds <= 0:
            raise ValueError("retry_seconds must be positive")


class WorkerAgent:
    """One serving process + its registration/heartbeat loop.

    The server is a :class:`~repro.serve.BackgroundServer` (the worker
    must serve while the agent heartbeats); :meth:`start` blocks until
    the socket is bound *and* the first registration succeeded, so a
    started agent is immediately routable.  :meth:`stop` deregisters
    gracefully (the controller migrates this worker's refs to the
    survivors); :meth:`kill` simulates a crash — the server vanishes,
    heartbeats stop, and the controller finds out by timeout.
    """

    def __init__(
        self,
        worker_config: ServerConfig | None = None,
        agent_config: AgentConfig | None = None,
    ):
        if agent_config is None:
            raise ValueError("agent_config is required (who do we join?)")
        self.agent_config = agent_config
        self.worker_config = worker_config or ServerConfig(shards=1)
        self._background = BackgroundServer(self.worker_config)
        self._client: ServeClient | None = None
        self._client_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._name: str | None = agent_config.name
        # bumped on every (re-)registration: lets the controller tell a
        # restarted agent from a repeated heartbeat of the same one
        self._agent_generation = 0
        self._registered = threading.Event()

    # -- identity -------------------------------------------------------------

    @property
    def name(self) -> str:
        assert self._name is not None, "agent not started"
        return self._name

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._background.address
        return self.agent_config.advertise_host or host, port

    @property
    def server(self) -> BackgroundServer:
        return self._background

    @property
    def agent_generation(self) -> int:
        """This agent's own restart counter: 1 after the first join,
        bumped on every eviction-triggered rejoin — the chaos tests read
        it to assert that a partition really forced a re-registration."""
        return self._agent_generation

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "WorkerAgent":
        self._background.start()
        host, port = self.address
        if self._name is None:
            self._name = f"worker-{host.replace('.', '-')}-{port}"
        self._register()  # raises on a refused first join (bad secret etc.)
        self._registered.set()
        self._thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"repro-agent-{self._name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, *, deregister: bool = True) -> None:
        """Graceful leave: stop heartbeating, tell the controller (so it
        migrates this worker's refs off before the socket dies), then
        drain the server."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
        if deregister and self._name is not None:
            try:
                self._controller().request(
                    "deregister", worker={"name": self._name}
                )
            except Exception as error:
                log_event(
                    _logger, logging.WARNING, "agent.deregister_failed",
                    worker=self._name, error=type(error).__name__,
                )
        self._close_client()
        self._background.stop()

    def kill(self) -> None:
        """Crash simulation: the worker disappears without a goodbye —
        the controller learns from the heartbeat timeout."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._close_client()
        self._background.stop()

    def __enter__(self) -> "WorkerAgent":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the control-plane loop -----------------------------------------------

    def _controller(self) -> ServeClient:
        with self._client_lock:
            if self._client is None:
                config = self.agent_config
                self._client = ServeClient(
                    config.controller_host,
                    config.controller_port,
                    timeout=config.request_timeout,
                    auth_secret=config.auth_secret,
                )
            return self._client

    def _close_client(self) -> None:
        with self._client_lock:
            if self._client is not None:
                try:
                    self._client.close()
                except OSError:
                    pass
                self._client = None

    def _register(self) -> dict:
        host, port = self.address
        self._agent_generation += 1
        result = self._controller().request(
            "register",
            worker={
                "name": self._name,
                "host": host,
                "port": port,
                "capacity": self.agent_config.capacity,
                "generation": self._agent_generation,
            },
        )
        log_event(
            _logger, logging.INFO, "agent.registered",
            worker=self._name, host=host, port=port,
            joined=result.get("joined"),
            workers=result.get("workers"),
            ring_epoch=result.get("ring_epoch"),
        )
        return result

    def _heartbeat_loop(self) -> None:
        config = self.agent_config
        while not self._stop_event.wait(config.heartbeat_seconds):
            try:
                answer = self._controller().request(
                    "heartbeat",
                    worker={
                        "name": self._name,
                        "generation": self._agent_generation,
                    },
                )
                if not answer.get("known"):
                    # evicted (a partition outlasted the timeout): rejoin
                    # under the same name to reclaim the same ring ranges
                    log_event(
                        _logger, logging.WARNING, "agent.rejoining",
                        worker=self._name,
                    )
                    self._register()
            except Exception as error:
                # the controller is unreachable: drop the connection, keep
                # serving, and retry — registration state is controller-side,
                # so nothing is lost but time
                log_event(
                    _logger, logging.WARNING, "agent.heartbeat_failed",
                    worker=self._name, error=type(error).__name__,
                )
                self._close_client()
                if self._stop_event.wait(config.retry_seconds):
                    return


def run_worker_agent(
    worker_config: ServerConfig | None = None,
    agent_config: AgentConfig | None = None,
) -> None:
    """Run a joined worker in the foreground (``repro serve --join``):
    serve until interrupted, then deregister and drain."""
    agent = WorkerAgent(worker_config, agent_config)
    agent.start()
    host, port = agent.address
    print(
        f"repro serve: worker {agent.name!r} on {host}:{port} joined "
        f"controller {agent_config.controller_host}:"
        f"{agent_config.controller_port}",
        flush=True,
    )
    try:
        while agent.server._thread.is_alive():
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        agent.stop()
