"""Shared-secret authentication and TLS helpers for ``repro.cluster``.

Non-loopback serving needs two things the loopback fleet never did: proof
that the peer knows the cluster secret, and (optionally) an encrypted
transport.  Both are deliberately boring:

* **Handshake** — client-initiated challenge/response over the normal
  JSON-lines protocol (the ``auth`` verb).  The server mints a random
  nonce per connection; the client answers with
  ``HMAC-SHA256(secret, "repro/cluster-auth:" + nonce)``.  The secret
  never crosses the wire, a captured MAC is useless on any other
  connection (fresh nonce), and comparison is constant-time.  This is
  *authentication only* — it does not encrypt; pair it with TLS (or a
  private network) when the wire itself is hostile.

* **TLS** — plain ``ssl`` stdlib contexts wrapping the same byte
  streams.  The protocol layer is transport-agnostic (newline-delimited
  JSON either way), so TLS is purely a socket concern: servers load a
  cert/key pair, clients pin the cluster CA (self-signed deployments
  simply distribute the server cert as the CA).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import ssl

#: Domain-separation prefix: an attacker who can make the server MAC
#: arbitrary strings in some future protocol extension cannot forge an
#: auth response, because auth MACs are computed over this namespace.
_MAC_NAMESPACE = "repro/cluster-auth:"

#: Nonce entropy in bytes (hex-encoded on the wire).
_NONCE_BYTES = 16


def new_nonce() -> str:
    """A fresh per-connection challenge (hex, 128 bits of entropy)."""
    return secrets.token_hex(_NONCE_BYTES)


def compute_mac(secret: str, nonce: str) -> str:
    """The handshake response for *nonce* under *secret* (hex digest)."""
    return hmac.new(
        secret.encode("utf-8"),
        (_MAC_NAMESPACE + nonce).encode("utf-8"),
        hashlib.sha256,
    ).hexdigest()


def verify_mac(secret: str, nonce: str, mac: object) -> bool:
    """Constant-time check of a client's handshake response."""
    if not isinstance(mac, str):
        return False
    return hmac.compare_digest(compute_mac(secret, nonce), mac)


def server_ssl_context(certfile: str, keyfile: str) -> ssl.SSLContext:
    """A TLS server context for the given cert/key pair."""
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(certfile, keyfile)
    return context


def client_ssl_context(
    cafile: str | None = None,
    *,
    check_hostname: bool = False,
) -> ssl.SSLContext:
    """A TLS client context pinned to the cluster CA.

    With *cafile* the peer must present a cert signed by (or equal to)
    it; hostname checks default off because cluster workers dial each
    other by IP.  Without *cafile* verification is disabled — encryption
    only, for lab setups; pass the CA in production.
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    if cafile is not None:
        context.load_verify_locations(cafile)
        context.check_hostname = check_hostname
        context.verify_mode = ssl.CERT_REQUIRED
    else:
        context.check_hostname = False
        context.verify_mode = ssl.CERT_NONE
    return context
