"""Fleet membership for the cluster controller.

:class:`ClusterMembership` is the **worker provider** behind a
:class:`~repro.cluster.controller.ClusterEngine` — the remote twin of
:class:`~repro.serve.supervisor.FleetSupervisor`, satisfying the same
provider surface the fleet's retried wire call consumes
(``n_workers`` / ``ensure_alive`` / ``restart`` / ``stop``; see
:class:`~repro.serve.fleet.BaseWorkerFleet`).  The difference is the
direction of control: a supervisor *spawns* workers and knows they died
by waitpid; a membership is *told* about workers (``register``) and
infers death from silence (heartbeat timeout).

Generations are controller-assigned and globally monotonic: every
(re-)registration gets a fresh one, so the fleet's generation-keyed
connection cache can never reuse a stale socket against a replaced
worker — the same mechanism that makes supervisor respawns safe.

Shard indexes are positions in the member list and *compact on
removal*; ring stability across arbitrary leaves comes from the
name-keyed :class:`~repro.serve.shard.HashRing` the controller rebuilds
from :meth:`ring_names`, not from index stability.  ``ring_epoch``
increments on every membership change so clients and operators can
observe rebalances.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

from ..exceptions import WorkerUnavailableError
from ..obs.log import get_logger, log_event

_logger = get_logger("cluster.membership")


@dataclass
class RemoteWorkerHandle:
    """One registered remote worker (the cluster twin of
    :class:`~repro.serve.supervisor.WorkerHandle`): its advertised dial
    address, the controller-assigned generation, and liveness state."""

    name: str
    host: str
    port: int
    generation: int  # controller-assigned, unique per registration
    shard: int  # current index in the member list (compacts on removal)
    capacity: int = 1
    agent_generation: int = 0  # the worker's own restart counter
    registered_at: float = 0.0
    last_seen: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "generation": self.generation,
            "shard": self.shard,
            "capacity": self.capacity,
            "agent_generation": self.agent_generation,
        }


class ClusterMembership:
    """Thread-safe registry of remote workers with liveness timeouts.

    ``heartbeat_timeout`` is the silence budget: a worker whose last
    heartbeat (or registration) is older than this is *stale* —
    ``ensure_alive`` refuses to route to it, and :meth:`evict_stale`
    (driven by the controller's eviction loop) removes it from the
    member list, which shrinks the ring.
    """

    def __init__(
        self,
        *,
        heartbeat_timeout: float = 5.0,
        clock=time.monotonic,
    ):
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        self._clock = clock
        self._lock = threading.RLock()
        self._members: list[RemoteWorkerHandle] = []
        self._generation = 0
        self._epoch = 0
        self._evictions = 0
        self._stopped = False

    # -- the provider surface (BaseWorkerFleet's contract) -------------------

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._members)

    def ensure_alive(self, shard: int) -> RemoteWorkerHandle:
        """The shard's current handle, refusing stale members: a worker
        that stopped heartbeating gets no new requests even before the
        eviction loop removes it."""
        with self._lock:
            if self._stopped:
                raise WorkerUnavailableError("the cluster membership is stopped")
            if shard >= len(self._members):
                raise WorkerUnavailableError(
                    f"no worker at shard {shard} (fleet has "
                    f"{len(self._members)} members)"
                )
            handle = self._members[shard]
            if self._clock() - handle.last_seen > self.heartbeat_timeout:
                raise WorkerUnavailableError(
                    f"worker {handle.name!r} has missed heartbeats for "
                    f"over {self.heartbeat_timeout}s"
                )
            return handle

    def restart(self, shard: int, observed_generation: int):
        """The remote analogue of a supervisor respawn: a controller
        cannot restart a machine it does not own, so recovery means *a
        newer registration already arrived* (the worker re-joined under
        the same name, or a replacement took the slot).  If the shard's
        generation moved past what the caller observed, hand back the
        new handle — the retry dials it; otherwise the worker is simply
        gone and the caller gets a structured failure, never a hang."""
        with self._lock:
            if self._stopped:
                raise WorkerUnavailableError("the cluster membership is stopped")
            if shard < len(self._members):
                handle = self._members[shard]
                if handle.generation != observed_generation:
                    return handle  # a fresh registration took the slot
            raise WorkerUnavailableError(
                f"worker at shard {shard} is unreachable and the "
                "controller cannot respawn remote workers; waiting for it "
                "to re-register"
            )

    def stop(self) -> None:
        with self._lock:
            self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- registration / liveness ---------------------------------------------

    def register(
        self,
        name: str,
        host: str,
        port: int,
        *,
        capacity: int = 1,
        agent_generation: int = 0,
    ) -> tuple[RemoteWorkerHandle, bool]:
        """Admit (or refresh) a worker; returns ``(handle, joined)``.

        ``joined`` is ``True`` only when the *name* is new to the ring —
        a re-registration (worker restart, new port, heartbeat refresh)
        updates the existing slot in place and bumps its generation so
        cached connections are redialed, but does not move any ring
        range (same name → same virtual points).
        """
        if not name:
            raise ValueError("worker name must be non-empty")
        now = self._clock()
        with self._lock:
            self._generation += 1
            for handle in self._members:
                if handle.name == name:
                    handle.host = host
                    handle.port = port
                    handle.capacity = capacity
                    handle.agent_generation = agent_generation
                    handle.generation = self._generation
                    handle.registered_at = now
                    handle.last_seen = now
                    self._epoch += 1
                    log_event(
                        _logger, logging.INFO, "cluster.register",
                        worker=name, host=host, port=port, rejoined=True,
                        generation=handle.generation, epoch=self._epoch,
                    )
                    return handle, False
            handle = RemoteWorkerHandle(
                name=name, host=host, port=port,
                generation=self._generation,
                shard=len(self._members), capacity=capacity,
                agent_generation=agent_generation,
                registered_at=now, last_seen=now,
            )
            self._members.append(handle)
            self._epoch += 1
            log_event(
                _logger, logging.INFO, "cluster.register",
                worker=name, host=host, port=port, rejoined=False,
                generation=handle.generation, epoch=self._epoch,
                workers=len(self._members),
            )
            return handle, True

    def deregister(self, name: str) -> RemoteWorkerHandle | None:
        """Remove a worker by name (graceful leave); compacts indexes."""
        with self._lock:
            for index, handle in enumerate(self._members):
                if handle.name == name:
                    del self._members[index]
                    self._compact()
                    self._epoch += 1
                    log_event(
                        _logger, logging.INFO, "cluster.deregister",
                        worker=name, epoch=self._epoch,
                        workers=len(self._members),
                    )
                    return handle
            return None

    def heartbeat(self, name: str, agent_generation: int = 0) -> bool:
        """Record one heartbeat; ``False`` tells an unknown (evicted)
        worker to re-register."""
        with self._lock:
            for handle in self._members:
                if handle.name == name:
                    handle.last_seen = self._clock()
                    if agent_generation:
                        handle.agent_generation = agent_generation
                    return True
            return False

    def stale_members(self) -> list[RemoteWorkerHandle]:
        """A read-only peek at the members :meth:`evict_stale` would drop
        right now — no state changes, no epoch bump.  The eviction sweep
        uses this to abort the doomed workers' cached connections
        *before* taking the rebalance lock, which a request wedged on a
        frozen worker's socket may be holding."""
        now = self._clock()
        with self._lock:
            return [
                handle for handle in self._members
                if now - handle.last_seen > self.heartbeat_timeout
            ]

    def evict_stale(self) -> list[RemoteWorkerHandle]:
        """Drop every member whose silence exceeds the timeout."""
        now = self._clock()
        with self._lock:
            stale = [
                handle for handle in self._members
                if now - handle.last_seen > self.heartbeat_timeout
            ]
            if not stale:
                return []
            names = {handle.name for handle in stale}
            self._members = [
                handle for handle in self._members
                if handle.name not in names
            ]
            self._compact()
            self._epoch += 1
            self._evictions += len(stale)
            log_event(
                _logger, logging.WARNING, "cluster.evict",
                workers=sorted(names), epoch=self._epoch,
                remaining=len(self._members),
            )
            return stale

    def _compact(self) -> None:
        """Re-index shard positions after a removal (lock held)."""
        for index, handle in enumerate(self._members):
            handle.shard = index

    # -- introspection --------------------------------------------------------

    @property
    def ring_epoch(self) -> int:
        with self._lock:
            return self._epoch

    def ring_names(self) -> list[str]:
        """Member names in shard order — the ring's token keys."""
        with self._lock:
            return [handle.name for handle in self._members]

    def handles(self) -> list[RemoteWorkerHandle]:
        with self._lock:
            return list(self._members)

    def handle_for(self, name: str) -> RemoteWorkerHandle | None:
        with self._lock:
            for handle in self._members:
                if handle.name == name:
                    return handle
            return None

    def member_generation(self, name: str) -> int | None:
        """The controller-assigned generation of *name*'s current
        registration (``None`` if not a member).  A rolling restart
        watches this: a same-name rejoin is complete exactly when the
        generation has moved past the one recorded before the restart."""
        with self._lock:
            for handle in self._members:
                if handle.name == name:
                    return handle.generation
            return None

    def status(self) -> dict:
        """The membership block of the controller's ``stats`` verb."""
        now = self._clock()
        with self._lock:
            return {
                "workers": len(self._members),
                "ring_epoch": self._epoch,
                "evictions": self._evictions,
                "heartbeat_timeout": self.heartbeat_timeout,
                "members": [
                    {
                        **handle.to_dict(),
                        "age_seconds": round(now - handle.registered_at, 3),
                        "silence_seconds": round(now - handle.last_seen, 3),
                    }
                    for handle in self._members
                ],
            }
