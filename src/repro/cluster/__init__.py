"""``repro.cluster`` — the host-per-shard control plane.

Where :mod:`repro.serve.fleet` spawns loopback worker *processes*, this
package dials worker *addresses*: a **controller**
(:class:`ClusterServer`) accepts worker registration over the wire
(``register``/``deregister``/``heartbeat`` verbs), maintains fleet
membership with liveness timeouts (:class:`ClusterMembership`), and
routes the same decide/stats surface over the registered workers
(:class:`ClusterEngine`) via per-worker :class:`ServeClient` connections.
A **worker agent** (:class:`WorkerAgent`, ``repro serve --join``) runs an
ordinary :class:`~repro.serve.CertaintyServer` and phones home.

Membership changes drive a **live ring rebalance**: the class-digest
ring is re-keyed by worker *name* (so an arbitrary leave remaps only
~1/N of the digest space), stored-instance refs migrate with their
versions preserved, and the receiving workers' plan caches are warmed by
replaying the hot classes they just inherited.

Stored refs are **replicated**: every primary mutation is mirrored
asynchronously to the ref's next distinct ring successor, and after any
membership change a repair pass (:mod:`repro.cluster.replication`)
restores one-primary-on-owner + one-replica-on-successor — promoting
replicas in place after an eviction, so a worker crash no longer loses
its refs (only a double failure does).

Transport hardening lives in :mod:`repro.cluster.auth`: a shared-secret
HMAC handshake on every connection of a secret-configured server (the
``auth`` verb, ``unauthorized`` error code) and optional stdlib TLS.

Submodules are imported lazily: the serving layer imports
``repro.cluster.auth`` without dragging the controller (which imports
the serving layer back) into every worker process.
"""

from __future__ import annotations

__all__ = [
    "AgentConfig",
    "ClusterEngine",
    "ClusterMembership",
    "ClusterServer",
    "RemoteWorkerHandle",
    "RepairAction",
    "WorkerAgent",
    "client_ssl_context",
    "compute_mac",
    "controller_factory",
    "new_nonce",
    "plan_replica_repairs",
    "run_worker_agent",
    "server_ssl_context",
    "verify_mac",
]

_EXPORTS = {
    "AgentConfig": "agent",
    "WorkerAgent": "agent",
    "run_worker_agent": "agent",
    "ClusterMembership": "membership",
    "RemoteWorkerHandle": "membership",
    "ClusterEngine": "controller",
    "ClusterServer": "controller",
    "controller_factory": "controller",
    "RepairAction": "replication",
    "plan_replica_repairs": "replication",
    "compute_mac": "auth",
    "verify_mac": "auth",
    "new_nonce": "auth",
    "client_ssl_context": "auth",
    "server_ssl_context": "auth",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__() -> list[str]:
    return sorted(__all__)
