"""Replica placement planning: pure decisions, no wire traffic.

The cluster invariant this module encodes: **every live ref has exactly
one primary copy (on its ring owner) and exactly one replica (on the
ring's next distinct successor), and the two are never the same
worker.**  :func:`plan_replica_repairs` takes the current ring plus a
census of who actually holds what — primaries from ``instance_list``,
replicas from ``replica_inventory`` — and returns the ordered list of
:class:`RepairAction`\\ s that restores the invariant.  It is a pure
function of its inputs, which is what makes the invariant *testable*:
the property suite drives random join/leave/evict histories through a
model fleet and asserts the planner always converges to a state where
it has nothing left to say.

The planner leans on :meth:`~repro.serve.shard.HashRing.successor_for`'s
load-bearing property: the successor holding a ref's replica is exactly
the worker that *becomes* the ring owner when the current owner's tokens
vanish — so after an eviction the plan for every orphaned ref is a
local ``promote`` on the worker that already holds the bytes, never a
transfer from a dead machine.

Action order matters and is fixed: promotes and primary copies first
(they may read from stray copies), then replica installs (they read
from the now-correct owner), then stray drops (nothing reads a stray
after this point).  Every action is idempotent on the wire, so a crash
mid-plan followed by a fresh plan converges the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..serve.shard import HashRing, ref_digest

#: The kinds a repair action can take, in execution-order groups.
_KIND_ORDER = {
    "promote": 0,        # owner turns its replica into the primary
    "copy_primary": 0,   # owner installs the primary read from `source`
    "replicate": 1,      # successor installs a replica read from `source`
    "drop_primary": 2,   # a non-owner discards its stray primary
    "drop_replica": 2,   # a non-successor discards its stray replica
}


@dataclass(frozen=True)
class RepairAction:
    """One idempotent step toward the owner+successor invariant.

    ``worker`` is the worker the action runs on; ``source`` (for copies
    and replica installs) names the worker to read the bytes from, with
    ``source_primary`` saying which of its two stores holds them.
    """

    kind: str
    worker: str
    ref: str
    version: int | None = None
    source: str | None = None
    source_primary: bool = True

    def __post_init__(self):
        if self.kind not in _KIND_ORDER:
            raise ValueError(f"unknown repair kind {self.kind!r}")


def plan_replica_repairs(
    ring: HashRing,
    primaries: dict[str, dict[str, int]],
    replicas: dict[str, dict[str, int]],
) -> list[RepairAction]:
    """The actions restoring one-primary-on-owner + one-replica-on-successor.

    ``primaries``/``replicas`` map worker name → {ref → version} — the
    fleet census.  Workers absent from the ring contribute nothing (their
    copies are unreachable, not strays to drop).  The freshest version of
    a ref anywhere in the census wins; versions are preserved end to end.
    Returns actions sorted ref-major in the fixed execution order.
    """
    members = set(ring.names)
    refs: set[str] = set()
    for census in (primaries, replicas):
        for worker, held in census.items():
            if worker in members:
                refs.update(held)

    actions: list[RepairAction] = []
    for ref in sorted(refs):
        digest = ref_digest(ref)
        owner = ring.names[ring.shard_for(digest)]
        succ_index = ring.successor_for(digest)
        succ = None if succ_index is None else ring.names[succ_index]

        # the census restricted to ring members, freshest copy first
        copies = sorted(
            (
                (version, is_primary, worker)
                for census, is_primary in ((primaries, True),
                                           (replicas, False))
                for worker, held in census.items()
                if worker in members and ref in held
                for version in (held[ref],)
            ),
            key=lambda c: (-c[0], not c[1], c[2]),
        )
        best_version, _, _ = copies[0]

        def held(census: dict[str, dict[str, int]], worker: str) -> int | None:
            return census.get(worker, {}).get(ref)

        # 1. the owner's primary
        owner_primary = held(primaries, owner)
        owner_replica = held(replicas, owner)
        promoting = False
        if owner_primary != best_version:
            if owner_replica == best_version:
                promoting = True
                actions.append(RepairAction("promote", owner, ref))
            else:
                version, src_primary, src = next(
                    c for c in copies if c[0] == best_version
                )
                actions.append(RepairAction(
                    "copy_primary", owner, ref,
                    version=version, source=src, source_primary=src_primary,
                ))

        # 2. the successor's replica (read from the owner, who holds the
        #    best primary once group-0 actions ran)
        if succ is not None and held(replicas, succ) != best_version:
            actions.append(RepairAction(
                "replicate", succ, ref,
                version=best_version, source=owner, source_primary=True,
            ))

        # 3. strays
        for worker, held_map in sorted(primaries.items()):
            if worker in members and worker != owner and ref in held_map:
                actions.append(RepairAction("drop_primary", worker, ref))
        for worker, held_map in sorted(replicas.items()):
            if worker not in members or ref not in held_map:
                continue
            if worker == succ:
                continue  # stale successor replicas are overwritten above
            if worker == owner and promoting:
                continue  # the promote consumes the owner's replica
            actions.append(RepairAction("drop_replica", worker, ref))

    actions.sort(key=lambda a: (a.ref, _KIND_ORDER[a.kind], a.worker))
    return actions
