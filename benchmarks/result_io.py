"""Machine-readable benchmark trajectories: ``BENCH_<name>.json``.

The ``report()`` tables in :mod:`benchmarks.conftest` are for humans
reading a ``pytest -s`` run; nothing in them survives the terminal.
This module is the durable half: each experiment records its headline
metrics and configuration as JSON under ``benchmarks/results/``, stamped
with the git revision, so runs on different commits can be diffed into a
performance trajectory (``git log`` for the code, ``BENCH_*.json`` for
what it did to the numbers).

One file per experiment id, one *series* per measured configuration::

    from benchmarks.result_io import record_result

    record_result(
        "e17_serve_scaling", "shards-4",
        metrics={"throughput_rps": 1234.5, "elapsed_ms": 812.0},
        config={"shards": 4, "cache_per_shard": 16},
    )

produces/updates ``benchmarks/results/BENCH_e17_serve_scaling.json``::

    {
      "bench": "e17_serve_scaling",
      "git_rev": "c88c8ad…",
      "written_at": "2026-08-08T12:00:00+00:00",
      "series": {"shards-4": {"metrics": {…}, "config": {…}}}
    }

Series accumulate across calls within a run *and* across runs on the
same revision; a run on a new revision starts the file over (mixing
revisions in one trajectory point would make every diff a lie).
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def git_rev() -> str:
    """The current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def result_path(name: str) -> Path:
    return RESULTS_DIR / f"BENCH_{name}.json"


def record_result(
    name: str,
    series: str,
    metrics: dict,
    config: dict | None = None,
) -> Path:
    """Merge one series' metrics into ``BENCH_<name>.json``; return its path.

    *metrics* must be JSON-serializable numbers/strings (it is the part
    a trajectory plot consumes); *config* is the free-form knob record
    that makes the numbers reproducible.
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError(f"bench name must be a bare token, got {name!r}")
    path = result_path(name)
    rev = git_rev()
    document = {"bench": name, "git_rev": rev, "series": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
        # keep accumulating only within the same revision: one file is
        # one trajectory point, never a mix of commits
        if (
            isinstance(existing, dict)
            and existing.get("git_rev") == rev
            and isinstance(existing.get("series"), dict)
        ):
            document["series"] = existing["series"]
    document["series"][series] = {
        "metrics": dict(metrics),
        "config": dict(config or {}),
    }
    document["written_at"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
