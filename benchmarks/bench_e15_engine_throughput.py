"""E15 — engine throughput: warm plan cache vs cold per-call construction.

Extension experiment: the engine's value proposition is amortization — pay
classification, routing and rewriting construction once per distinct
problem, then stream instances through the compiled plan.  The report
serves the same mixed-class workload twice:

* **cold** — every request recompiles its plan (classify + route +
  construct), the per-call behaviour of the pre-engine code paths;
* **warm** — one :class:`~repro.engine.CertaintyEngine` serves the stream,
  so repeated problems hit the LRU plan cache.

Answers must be identical; the report shows the speedup and the cache hit
rate.  Timed fixtures isolate the two costs per call.
"""

import time

from benchmarks.conftest import report
from repro.engine import CertaintyEngine, compile_plan
from repro.workloads import StreamParams, fig1_instance, intro_query_q0
from repro.workloads import mixed_problem_stream

PARAMS = StreamParams(
    n_problems=12, instances_per_problem=6, seed=7, repeat_rate=0.5
)


def test_e15_report():
    items = list(mixed_problem_stream(PARAMS))
    n_instances = sum(len(item.instances) for item in items)

    start = time.perf_counter()
    cold_answers = []
    for item in items:
        for db in item.instances:
            plan = compile_plan(item.query, item.fks)  # per-call compile
            cold_answers.append(plan.decide(db))
    cold_seconds = time.perf_counter() - start

    engine = CertaintyEngine()
    start = time.perf_counter()
    warm_answers = []
    for item in items:
        result = engine.decide_batch(item.query, item.fks, item.instances)
        warm_answers.extend(result.answers)
    warm_seconds = time.perf_counter() - start

    assert warm_answers == cold_answers

    stats = engine.stats()
    hit_rate = stats.cache.hit_rate or 0.0
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    backends = sorted({plan.backend for plan in stats.plans})
    report(
        "E15: warm plan-cache batch vs cold per-call construction",
        [
            ("requests", len(items), ""),
            ("instances", n_instances, ""),
            ("distinct plans", stats.cache.size, ""),
            ("cache hit rate", f"{hit_rate:.0%}", ""),
            ("cold", f"{cold_seconds * 1e3:.1f} ms",
             f"{n_instances / cold_seconds:,.0f}/s"),
            ("warm", f"{warm_seconds * 1e3:.1f} ms",
             f"{n_instances / warm_seconds:,.0f}/s"),
            ("speedup", f"{speedup:.1f}x", ""),
        ],
        ("series", "value", "throughput"),
    )
    print(f"  backends exercised: {', '.join(backends)}")

    # the acceptance criterion: warm-cache batch evaluation must beat cold
    # per-call solver construction, and the cache must actually hit.
    assert hit_rate > 0
    assert warm_seconds < cold_seconds


def test_e15_renamed_twin_throughput():
    """Warm-cache throughput on a stream of renaming-isomorphic spellings
    must match the identical-spelling case: the class-keyed plan cache
    compiles once, every spelling after the first hits, and nothing is
    re-prepared per spelling."""
    import string

    from repro.api import Problem
    from repro.engine import rename_instance, rename_problem
    from repro.workloads import random_instances_for_query

    base = Problem(*intro_query_q0())
    dbs = [fig1_instance()] + list(
        random_instances_for_query(base.query, base.fks, 5, seed=21)
    )
    n_spellings = 8
    spellings = [(base, dbs)]
    for index in range(1, n_spellings):
        mapping = {
            relation: f"{letter}_{index}"
            for relation, letter in zip(
                sorted(base.query.relations), string.ascii_uppercase
            )
        }
        twin = rename_problem(base, mapping)
        spellings.append(
            (twin, [rename_instance(db, mapping) for db in dbs])
        )

    def stream(engine, items):
        answers = []
        start = time.perf_counter()
        for problem, instances in items:
            for db in instances:
                answers.append(engine.decide(problem, db))
        return answers, time.perf_counter() - start

    identical = CertaintyEngine()
    identical_answers, identical_seconds = stream(
        identical, [(base, dbs)] * n_spellings
    )
    twins = CertaintyEngine()
    twin_answers, twin_seconds = stream(twins, spellings)

    assert twin_answers == identical_answers
    twin_stats = twins.stats()
    n = n_spellings * len(dbs)
    ratio = identical_seconds / twin_seconds if twin_seconds else 1.0
    report(
        "E15b: warm-cache throughput, renamed-twin stream vs identical",
        [
            ("spellings", n_spellings, ""),
            ("instances", n, ""),
            ("identical", f"{identical_seconds * 1e3:.1f} ms",
             f"{n / identical_seconds:,.0f}/s"),
            ("renamed twins", f"{twin_seconds * 1e3:.1f} ms",
             f"{n / twin_seconds:,.0f}/s"),
            ("twin/identical", f"{ratio:.2f}x", ""),
            ("plans compiled", twin_stats.cache.misses, ""),
            ("spellings shared", twin_stats.plans[0].spellings, ""),
        ],
        ("series", "value", "throughput"),
    )
    # no re-preparation per spelling: one compile, everything else hits
    assert twin_stats.cache.size == 1
    assert twin_stats.cache.misses == 1
    assert twin_stats.cache.hits == n - 1
    assert twin_stats.plans[0].spellings == n_spellings
    # and the isomorphic stream keeps warm-cache economics (identical-case
    # throughput, with generous slack for timer noise in CI)
    assert twin_seconds < identical_seconds * 3


def test_e15_cold_per_call_latency(benchmark):
    query, fks = intro_query_q0()
    db = fig1_instance()
    benchmark(lambda: compile_plan(query, fks).decide(db))


def test_e15_warm_cached_latency(benchmark):
    query, fks = intro_query_q0()
    db = fig1_instance()
    engine = CertaintyEngine()
    engine.decide(query, fks, db)  # compile once, outside the timer
    benchmark(lambda: engine.decide(query, fks, db))
