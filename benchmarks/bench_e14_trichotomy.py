"""E14 — the FK = ∅ trichotomy backdrop (paper Section 2).

Extension experiment: the paper's starting point is the Koutris–Wijsen
trichotomy for ``CERTAINTY(q)`` — FO / L-complete / coNP-complete, read off
the attack graph.  The report classifies the classical examples and shows
how adding foreign keys refines the FO region (Example 13's seesaw);
timings measure trichotomy classification across query sizes.
"""

import pytest

from benchmarks.conftest import report
from repro.core.classify import PkTrichotomy, classify, pk_trichotomy
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query

CASES = [
    ("path-2", ["R(x | y)", "S(y | z)"], PkTrichotomy.FO),
    ("key-cycle", ["R(x | y)", "S(y | x)"], PkTrichotomy.L_COMPLETE),
    ("nonkey-join", ["R(x | z)", "S(y | z)"], PkTrichotomy.CONP_COMPLETE),
    ("key-triangle", ["R(x | y)", "S(y | z)", "T(z | x)"],
     PkTrichotomy.L_COMPLETE),
]


def test_e14_report():
    rows = []
    for label, atoms, expected in CASES:
        q = parse_query(*atoms)
        verdict = pk_trichotomy(q)
        rows.append((label, verdict.name, expected.name))
        assert verdict == expected
    report("E14: FK = ∅ trichotomy", rows, ("query", "verdict", "expected"))

    # foreign keys refine only the FO region: adding FKs to a hard query
    # never makes it FO (Theorem 12 item 2)
    q = parse_query("R(x | y)", "S(y | x)")
    with_fk = classify(q, fk_set(q, "R[2]->S", "S[2]->R"))
    report(
        "E14: L-hardness survives foreign keys (Lemma 14)",
        [("key-cycle + both FKs", with_fk.verdict.name)],
        ("problem", "verdict"),
    )
    assert not with_fk.in_fo


@pytest.mark.parametrize("n_atoms", [4, 8, 16])
def test_e14_trichotomy_scaling(benchmark, n_atoms):
    atoms = [f"R{i}(x{i} | x{i + 1})" for i in range(n_atoms - 1)]
    atoms.append(f"R{n_atoms - 1}(x{n_atoms - 1} | x0)")  # close the cycle
    q = parse_query(*atoms)
    result = benchmark(lambda: pk_trichotomy(q))
    assert result == PkTrichotomy.L_COMPLETE
