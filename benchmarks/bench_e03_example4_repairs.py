"""E3 — Example 4: the three ⊕-repairs and their incomparability.

Paper artifact: ``q = {R(x,y), S(y,z), T(z)}``, ``FK = {R[2]→S, S[2]→T}``,
``db = {R(a,b), S(b,c)}`` has the subset-repair ``r1 = {}``, an
insertion-repair ``r2`` with an invented value, and the superset-repair
``r3``; ``r2`` and ``r3`` are ⊕-incomparable.  Timings: canonical repair
enumeration and ⊕-minimality verification.
"""

from benchmarks.conftest import report
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db import DatabaseInstance, Fact
from repro.repairs import canonical_repairs, verify_repair


def _setting():
    q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
    fks = fk_set(q, "R[2]->S", "S[2]->T")
    db = DatabaseInstance(
        [Fact("R", ("a", "b"), 1), Fact("S", ("b", "c"), 1)]
    )
    return q, fks, db


def test_e03_report():
    q, fks, db = _setting()
    repairs = sorted(canonical_repairs(db, fks), key=lambda r: r.size)
    rows = []
    for index, repair in enumerate(repairs, start=1):
        kind = (
            "subset" if repair.facts <= db.facts
            else "superset" if db.facts <= repair.facts
            else "mixed (insert + delete)"
        )
        rows.append((f"r{index}", repair.size, kind))
    report("E3: Example 4 ⊕-repairs", rows, ("repair", "facts", "kind"))
    assert len(repairs) == 3
    r2, r3 = repairs[1], repairs[2]
    assert not db.closer_or_equal(r2, r3)
    assert not db.closer_or_equal(r3, r2)
    print("  r2 and r3 are ⪯-incomparable, as Example 4 notes")


def test_e03_enumeration(benchmark):
    q, fks, db = _setting()
    result = benchmark(lambda: list(canonical_repairs(db, fks)))
    assert len(result) == 3


def test_e03_verification(benchmark):
    q, fks, db = _setting()
    repairs = list(canonical_repairs(db, fks))
    benchmark(
        lambda: all(verify_repair(db, r, fks) for r in repairs)
    )
