"""E8 — Proposition 16: the NL-complete problem and its linear-time solver.

Paper artifact: ``CERTAINTY({N(x,x), O(x)}, {N[2]→O})`` is NL-complete via
graph reachability.  The report validates the reachability algorithm
against the exact oracle on small instances; timings sweep instance sizes
for the solver and show the oracle's exponential comparator.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.repairs import certain_answer
from repro.solvers import (
    build_reachability_graph,
    certain_by_reachability,
    proposition16_query,
)
from repro.workloads import proposition16_instance


def test_e08_report():
    q, fks = proposition16_query()
    rng = random.Random(808)
    rows = []
    agree = 0
    for trial in range(8):
        db = proposition16_instance(rng.randint(2, 4), rng)
        fast = certain_by_reachability(db)
        exact = certain_answer(q, fks, db).certain
        agree += fast == exact
        graph = build_reachability_graph(db)
        rows.append(
            (trial, db.size, len(graph.vertices) - 1, len(graph.marked),
             fast, exact)
        )
        assert fast == exact
    report("E8: Proposition 16 solver vs ⊕-oracle", rows,
           ("trial", "|db|", "vertices", "marked", "NL solver", "oracle"))
    print(f"  agreement: {agree}/8")


@pytest.mark.parametrize("n_vertices", [16, 128, 1024])
def test_e08_solver_scaling(benchmark, n_vertices):
    rng = random.Random(n_vertices)
    db = proposition16_instance(
        n_vertices, rng, edge_probability=4.0 / n_vertices
    )
    benchmark(lambda: certain_by_reachability(db))


def test_e08_oracle_comparator(benchmark):
    q, fks = proposition16_query()
    rng = random.Random(4)
    db = proposition16_instance(4, rng)
    benchmark(lambda: certain_answer(q, fks, db).certain)
