"""E18 — mutation streams: delta-patch + ref-decide vs full instance ship.

Extension experiment, companion to E17: the `repro.store` registry turns a
mutate-then-re-decide workload from *O(instance)* per step into
*O(delta)* per step.

A client tracking a large, slowly changing instance has two ways to keep a
certainty answer fresh over the serve protocol:

**full-ship**
    apply each mutation locally and send the whole instance with every
    ``decide`` — the pre-registry protocol.  Every step pays JSON
    encoding, the wire, server-side decoding, canonical transport, and a
    from-scratch solve, all proportional to the *instance*.

**delta-patch + ref-decide**
    ``instance_put`` once, then per step ``instance_patch`` (a delta
    proportional to the *churn*) and ``decide`` by ref.  The server
    maintains a backend-native incremental state (here the Proposition 16
    attractor graph), so the per-step cost is the delta application plus
    an incremental re-solve.

The report drives identical seeded mutation streams through both modes at
1%, 10% and 50% churn per step (fraction of the instance's facts swapped)
against a loopback server and **asserts** the answers agree step for step,
that the registry really answered incrementally, and — the acceptance
criterion — that the delta path clears **≥ 5x** the full-ship throughput
at ≤ 1% churn.  The result table is reproduced in ``docs/deployment.md``.
"""

import random
import time

import pytest

from benchmarks.conftest import report
from benchmarks.result_io import record_result
from repro.api import Problem
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.serve import BackgroundServer, ServeClient, ServerConfig
from repro.store import Delta
from repro.workloads import proposition16_instance

N_VERTICES = 200
EDGE_PROBABILITY = 0.2
STEPS = 12
CHURNS = (0.01, 0.10, 0.50)
SPEEDUP_FLOOR = 5.0


def _problem() -> Problem:
    return Problem.of("N(x | x)", "O(x |)", fks=["N[2]->O"])


def _initial_instance() -> DatabaseInstance:
    return proposition16_instance(
        N_VERTICES, random.Random(18), edge_probability=EDGE_PROBABILITY
    )


def _mutation_stream(
    db: DatabaseInstance, churn: float, steps: int, seed: int
) -> list[Delta]:
    """Seeded deltas, each swapping ``churn * |db|`` off-diagonal edges
    (half removed, half added) and occasionally toggling an ``O`` mark —
    the mutations that move the attractor answer."""
    rng = random.Random(seed)
    deltas = []
    current = db
    for _ in range(steps):
        budget = max(2, int(current.size * churn))
        edges = sorted(
            (
                f
                for f in current.relation_facts("N")
                if f.value_at(1) != f.value_at(2)
            ),
            key=repr,
        )
        removes = rng.sample(edges, min(len(edges), budget // 2))
        present = set(current.facts)
        adds = []
        while len(adds) < budget // 2:
            v = rng.randrange(N_VERTICES)
            w = rng.randrange(N_VERTICES)
            fact = Fact("N", (v, w), 1)
            if v != w and fact not in present:
                adds.append(fact)
                present.add(fact)
        marked = rng.randrange(N_VERTICES)
        mark = Fact("O", (marked,), 1)
        if mark in present:
            removes = removes + [mark]
        else:
            adds = adds + [mark]
        delta = Delta.of(adds=adds, removes=removes)
        deltas.append(delta)
        current = delta.apply(current)
    return deltas


def _drive_full_ship(
    client: ServeClient, problem: Problem, db: DatabaseInstance, deltas
) -> tuple[float, list[bool]]:
    answers = []
    current = db
    start = time.perf_counter()
    for delta in deltas:
        current = delta.apply(current)
        answers.append(client.decide(problem, current).certain)
    return time.perf_counter() - start, answers


def _drive_delta_ref(
    client: ServeClient,
    problem: Problem,
    ref: str,
    db: DatabaseInstance,
    deltas,
) -> tuple[float, list[bool], int]:
    client.put_instance(ref, db)
    client.decide(problem, ref=ref)  # seed the incremental state
    incremental = 0
    answers = []
    start = time.perf_counter()
    for delta in deltas:
        client.patch_instance(ref, delta)
        result = client.request(
            "decide", problem=problem, instance_ref=ref
        )
        answers.append(result["decision"]["certain"])
        incremental += bool(result["instance"]["incremental"])
    elapsed = time.perf_counter() - start
    client.drop_instance(ref)
    return elapsed, answers, incremental


def test_e18_delta_streams_beat_full_ship_at_low_churn():
    problem = _problem()
    db = _initial_instance()
    rows = []
    speedups = {}
    with BackgroundServer(
        ServerConfig(shards=2, linger_ms=1, plan_cache_size=16)
    ) as background:
        host, port = background.address
        with ServeClient(host, port, timeout=120.0) as client:
            for churn in CHURNS:
                deltas = _mutation_stream(
                    db, churn, STEPS, seed=int(churn * 1000)
                )
                full_s, full_answers = _drive_full_ship(
                    client, problem, db, deltas
                )
                delta_s, delta_answers, incremental = _drive_delta_ref(
                    client, problem, f"e18-{churn}", db, deltas
                )
                assert delta_answers == full_answers, (
                    f"churn {churn:.0%}: incremental answers diverged"
                )
                assert incremental == STEPS, (
                    f"churn {churn:.0%}: only {incremental}/{STEPS} steps "
                    "answered incrementally"
                )
                speedup = full_s / delta_s
                speedups[churn] = speedup
                mean_delta = sum(len(d) for d in deltas) / len(deltas)
                record_result(
                    "e18_delta_streams", f"churn-{churn:g}",
                    metrics={
                        "full_ship_rps": STEPS / full_s,
                        "delta_ref_rps": STEPS / delta_s,
                        "speedup": speedup,
                        "mean_delta_facts": mean_delta,
                    },
                    config={
                        "churn": churn,
                        "steps": STEPS,
                        "instance_facts": db.size,
                    },
                )
                rows.append(
                    (
                        f"{churn:.0%} churn",
                        f"{STEPS / full_s:,.0f}/s",
                        f"{STEPS / delta_s:,.0f}/s",
                        f"{speedup:.1f}x",
                        f"~{mean_delta:.0f} facts/delta over "
                        f"{db.size} facts",
                    )
                )
    report(
        f"E18: mutation-stream throughput, full-ship vs delta-patch + "
        f"ref-decide ({STEPS} steps, {db.size}-fact Proposition 16 "
        "instance, loopback server)",
        rows,
        ("series", "full-ship", "delta+ref", "speedup", "stream"),
    )

    # the acceptance criterion: at ≤1% churn the delta path must clear 5x
    assert speedups[CHURNS[0]] >= SPEEDUP_FLOOR, (
        f"delta-patch + ref-decide managed only {speedups[CHURNS[0]]:.1f}x "
        f"full-ship throughput at {CHURNS[0]:.0%} churn "
        f"(acceptance floor: {SPEEDUP_FLOOR}x)"
    )
    # speedup should not *grow* as churn rises toward whole-instance
    # deltas; allow noise but catch inversions of the whole curve
    assert speedups[CHURNS[0]] >= speedups[CHURNS[-1]] * 0.8, (
        f"speedups {speedups} should decay with churn"
    )


@pytest.mark.parametrize("churn", CHURNS)
def test_e18_stream_generator_is_deterministic(churn):
    db = _initial_instance()
    first = _mutation_stream(db, churn, 3, seed=42)
    second = _mutation_stream(db, churn, 3, seed=42)
    assert first == second
