"""E6 — the Fig. 3 / Lemma 15 reduction from graph reachability.

Paper artifact: reachability on (acyclic) digraphs reduces to the
complement of CERTAINTY({N(x,c,y), O(y)}, {N[3]→O}).  The report sweeps
random DAGs and layered DAGs with forced/blocked paths, confirming
answer preservation; timings scale the reduction plus the P-time solver to
512-vertex graphs.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.hardness import (
    ReachabilityInstance,
    random_dag,
    reduce_reachability,
)
from repro.solvers import certain_by_dual_horn
from repro.workloads import layered_dag


def test_e06_report():
    rng = random.Random(606)
    rows = []
    for layers, width, force in [
        (3, 2, True), (3, 2, False), (5, 3, True), (5, 3, False),
        (8, 4, True), (8, 4, False),
    ]:
        graph, source, target = layered_dag(
            layers, width, rng, guarantee_path=force
        )
        instance = ReachabilityInstance(graph, source, target)
        db = reduce_reachability(instance)
        via_cqa = not certain_by_dual_horn(db, "c")
        rows.append(
            (f"{layers}×{width}", force, len(graph.edges), db.size,
             instance.answer, via_cqa)
        )
        assert instance.answer == via_cqa
    report("E6: Fig. 3 reduction preserves reachability", rows,
           ("graph", "forced", "edges", "|db|", "bfs", "via CQA"))


def test_e06_random_dag_agreement():
    rng = random.Random(66)
    agreements = 0
    for _ in range(60):
        graph = random_dag(rng.randint(3, 9), 0.3, rng)
        vertices = graph.vertices
        s, t = rng.choice(vertices), rng.choice(vertices)
        instance = ReachabilityInstance(graph, s, t)
        db = reduce_reachability(instance)
        assert (not certain_by_dual_horn(db, "c")) == instance.answer
        agreements += 1
    print(f"\nE6: {agreements}/60 random DAGs agree")


@pytest.mark.parametrize("n_vertices", [8, 64, 512])
def test_e06_reduction_scaling(benchmark, n_vertices):
    rng = random.Random(n_vertices)
    graph = random_dag(n_vertices, 4.0 / n_vertices, rng)
    instance = ReachabilityInstance(graph, 0, n_vertices - 1)

    def roundtrip():
        db = reduce_reachability(instance)
        return certain_by_dual_horn(db, "c")

    benchmark(roundtrip)


@pytest.mark.parametrize("density", [0.05, 0.2, 0.5])
def test_e06_density_sweep(benchmark, density):
    rng = random.Random(int(density * 100))
    graph = random_dag(64, density, rng)
    instance = ReachabilityInstance(graph, 0, 63)
    db = reduce_reachability(instance)
    benchmark(lambda: certain_by_dual_horn(db, "c"))
