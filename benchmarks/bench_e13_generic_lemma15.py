"""E13 — the generic Lemma 15 construction (Appendix D.2).

Extension experiment beyond the Fig. 3 special case: the θ-valuation
reduction is built for four different block-interfering problems covering
both interference families (3a: disobedient remainder; 3b: key connected to
the referencing variable), and answer preservation is spot-checked on
layered DAGs.  Timings: building the reduced instance and deciding it with
the exact oracle at small sizes.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.hardness import generic_reduction, random_dag
from repro.repairs import certain_answer

PROBLEMS = [
    ("fig3/prop17 (3a)", ["N(x | 'c', y)", "O(y |)"], ["N[3]->O"]),
    ("example11 (3b)", ["Np(x | y)", "O(y |)", "T(x | y)"], ["Np[2]->O"]),
    ("prop16 (3b)", ["N(x | x)", "O(x |)"], ["N[2]->O"]),
    ("example13-q2 (3a)", ["N(x | 'c', y)", "O(y | w)"], ["N[3]->O"]),
]


def test_e13_report():
    rng = random.Random(13)
    rows = []
    for label, atoms, fk_texts in PROBLEMS:
        q = parse_query(*atoms)
        fks = fk_set(q, *fk_texts)
        reduction = generic_reduction(q, fks)
        agreements = 0
        trials = 0
        while trials < 8:
            g = random_dag(rng.randint(2, 4), 0.4, rng)
            vertices = g.vertices
            s, t = rng.choice(vertices), rng.choice(vertices)
            if s == t:
                continue
            db = reduction.build(g, s, t)
            no_instance = not certain_answer(q, fks, db).certain
            assert no_instance == g.reaches(s, t)
            agreements += 1
            trials += 1
        rows.append((label, reduction.witness.via, f"{agreements}/8"))
    report("E13: generic Lemma 15 reduction, answer preservation", rows,
           ("problem", "via", "agree"))


@pytest.mark.parametrize(
    "label,atoms,fk_texts", PROBLEMS, ids=[p[0] for p in PROBLEMS]
)
def test_e13_build_cost(benchmark, label, atoms, fk_texts):
    q = parse_query(*atoms)
    fks = fk_set(q, *fk_texts)
    reduction = generic_reduction(q, fks)
    rng = random.Random(7)
    g = random_dag(48, 0.1, rng)
    benchmark(lambda: reduction.build(g, 0, 47))


def test_e13_oracle_decide_cost(benchmark):
    q = parse_query("Np(x | y)", "O(y |)", "T(x | y)")
    fks = fk_set(q, "Np[2]->O")
    reduction = generic_reduction(q, fks)
    rng = random.Random(3)
    g = random_dag(3, 0.5, rng)
    db = reduction.build(g, 0, 2)
    benchmark(lambda: certain_answer(q, fks, db).certain)
