"""E10 — the Section 8 rewriting example and its asymmetry.

Paper artifact: for ``q = {N(c,y), O(y), P(y)}``, ``FK = {N[2]→O}`` the
rewriting is ``∃y(N(c,y) ∧ O(y)) ∧ ∀y(N(c,y) → P(y))`` — note the
asymmetric treatment of the referenced O and the unreferenced P.  The
report reproduces the yes-instance and its two no-instance perturbations;
timings evaluate the rewriting on widened instances.
"""

import pytest

from benchmarks.conftest import report
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.core.rewriting import consistent_rewriting
from repro.db import DatabaseInstance, Fact
from repro.fo import Evaluator, evaluate, render


def _problem():
    q = parse_query("N('c' | y)", "O(y |)", "P(y |)")
    return q, fk_set(q, "N[2]->O")


def _paper_instance():
    return DatabaseInstance(
        [
            Fact("N", ("c", "a"), 1),
            Fact("N", ("c", "b"), 1),
            Fact("O", ("a",), 1),
            Fact("P", ("a",), 1),
            Fact("P", ("b",), 1),
        ]
    )


def test_e10_report():
    q, fks = _problem()
    result = consistent_rewriting(q, fks)
    print(f"\nE10 rewriting: {render(result.formula)}")
    db = _paper_instance()
    rows = [("paper instance", evaluate(result.formula, db), True)]
    for dropped in ("a", "b"):
        smaller = db.difference([Fact("P", (dropped,), 1)])
        rows.append(
            (f"minus P({dropped})", evaluate(result.formula, smaller), False)
        )
    # the asymmetry: removing O(a) keeps certainty? No — the witness dies.
    no_o = db.difference([Fact("O", ("a",), 1)])
    rows.append(("minus O(a)", evaluate(result.formula, no_o), False))
    report("E10: Section 8 sensitivity", rows,
           ("instance", "certain", "paper"))
    assert all(got == want for _, got, want in rows)


@pytest.mark.parametrize("width", [10, 100, 1000])
def test_e10_evaluation_scaling(benchmark, width):
    q, fks = _problem()
    formula = consistent_rewriting(q, fks).formula
    facts = []
    for i in range(width):
        facts.append(Fact("N", ("c", i), 1))
        facts.append(Fact("O", (i,), 1))
        facts.append(Fact("P", (i,), 1))
    db = DatabaseInstance(facts)
    evaluator = Evaluator(db)
    assert benchmark(lambda: evaluator.evaluate(formula))
