"""E16 — prepared SQL backend: warm per-plan connection vs per-call rebuild.

Extension experiment, companion to E15: the redesigned
:class:`~repro.solvers.rewriting_solver.SqlRewritingSolver` keeps one warm
SQLite connection per prepared solver (schema DDL once, per instance only
``DELETE`` + ``INSERT`` + the compiled ``SELECT``), where the historical
behaviour (``warm=False``) reconnected and re-ran the DDL for every
instance.  The report streams one batch of random instances through both
modes over a session-routed ``fo-sql`` plan:

* answers must be identical,
* the warm solver must open exactly **one** connection for the whole
  batch while the cold solver opens one per instance (the ISSUE 2
  acceptance criterion), and
* the warm mode must beat the rebuild on wall clock.
"""

import time

from benchmarks.conftest import report
from repro.api import Problem, connect
from repro.solvers import SqlRewritingSolver
from repro.workloads import random_instances_for_query

PROBLEM = Problem.of(
    "R(x | y)", "S(y | z)", "T(z |)", fks=["R[2]->S", "S[2]->T"],
    name="e16-chain",
)
N_INSTANCES = 300


def _instances():
    return list(
        random_instances_for_query(
            PROBLEM.query, PROBLEM.fks, N_INSTANCES, seed=16
        )
    )


def test_e16_report():
    dbs = _instances()

    cold = SqlRewritingSolver(PROBLEM.query, PROBLEM.fks, warm=False)
    start = time.perf_counter()
    cold_answers = [cold.decide(db) for db in dbs]
    cold_seconds = time.perf_counter() - start

    with connect(fo_backend="sql") as session:
        start = time.perf_counter()
        batch = session.decide_batch(PROBLEM, dbs)
        warm_seconds = time.perf_counter() - start
        warm_solver = session.prepare(PROBLEM).solver
        warm_connections = warm_solver.connections_opened
        backend = batch.backend

    assert list(batch.answers) == cold_answers
    assert backend == "fo-sql"
    # the acceptance criterion: one SQLite connection for the whole batch
    assert warm_connections == 1
    assert cold.connections_opened == len(dbs)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    report(
        "E16: warm prepared-connection SQL vs per-call rebuild "
        f"(batch of {len(dbs)})",
        [
            ("cold (rebuild per call)", f"{cold_seconds * 1e3:.1f} ms",
             f"{len(dbs) / cold_seconds:,.0f}/s",
             f"{cold.connections_opened} connections"),
            ("warm (prepared plan)", f"{warm_seconds * 1e3:.1f} ms",
             f"{len(dbs) / warm_seconds:,.0f}/s",
             f"{warm_connections} connection"),
            ("speedup", f"{speedup:.2f}x", "", ""),
        ],
        ("series", "elapsed", "throughput", "sqlite"),
    )

    # warm prepared execution must beat rebuilding connection+DDL per call
    assert warm_seconds < cold_seconds


def test_e16_cold_per_call_latency(benchmark):
    db = _instances()[0]
    solver = SqlRewritingSolver(PROBLEM.query, PROBLEM.fks, warm=False)
    benchmark(lambda: solver.decide(db))


def test_e16_warm_prepared_latency(benchmark):
    db = _instances()[0]
    with SqlRewritingSolver(PROBLEM.query, PROBLEM.fks) as solver:
        solver.decide(db)  # warm the connection outside the timer
        benchmark(lambda: solver.decide(db))
