"""E17 — the serving layer: throughput vs shard count, micro-batch size,
and thread- vs process-per-shard deployment.

Extension experiment, companion to E15/E16: the `repro.serve` layer scales
consistent query answering along three axes.

**Sharding (E17a).**  A mixed stream whose distinct-*class* working set
exceeds one engine's plan cache thrashes: every recurrence of an evicted
class repays classification, routing and rewriting construction.  Routing
by consistent hashing on the canonical class fingerprint splits the
working set, so aggregate cache capacity grows with the shard count and
each shard's LRU stays hot.  The report serves the same round-robin
problem stream through 1, 2 and 4 shards and **asserts** throughput rises
from 1 to the widest configuration (answers must be identical throughout).
Since the canonical-class redesign the problems must differ by more than a
relation renaming — renamed twins share one class and would all land on
one shard — so the working set varies a *constant* per problem.

**Micro-batching (E17b).**  Concurrent requests for the same class can be
folded into one ``decide_batch`` — one plan-cache lookup, one warm
prepared solver, one executor round-trip.  The report fires a fixed burst
of concurrent remote decides through a loopback server with micro-batching
disabled (``max_batch=1``) and enabled (``max_batch=16``), asserting the
enabled server really groups (fewer engine batches than requests) while
answers stay identical.

**Threads vs processes (E17c).**  Thread shards share one GIL, so a
CPU-bound stream (decides measured in milliseconds of pure Python) gains
nothing from concurrent callers; process shards
(:class:`repro.serve.FleetEngine`) decide in parallel interpreters and pay
only the JSON wire cost.  The report drives an identical CPU-bound mixed
stream through thread shards and process shards at 1, 2 and 4 shards and
**asserts** the process fleet beats the thread engine at the widest
configuration whenever the host exposes more than one core (on a one-core
host the curve is still reported — processes cannot beat the GIL without
hardware parallelism, and the table then shows the wire overhead
instead).  The result table is reproduced in ``docs/deployment.md``.

**Phase attribution (E17d).**  The same run also answers *where* each
deployment's time goes: the span recorder's per-phase aggregates
(``repro.obs``) are snapshotted around the widest configuration's drive,
and the delta — plus the fleet workers' own ``stats`` phases — yields a
per-phase span table (``solve`` for thread shards; ``transport`` front-
side and ``solve``/``canonicalize``/``respond`` worker-side for the
fleet).  That table is the source of the thread-vs-process attribution
table in ``docs/deployment.md``.
"""

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import report
from benchmarks.result_io import record_result
from repro.api import Problem
from repro.serve import (
    AsyncServeClient,
    BackgroundServer,
    FleetEngine,
    ServeClient,
    ServerConfig,
    ShardedEngine,
)
from repro.api.session import SessionConfig
from repro.obs import recorder
from repro.workloads import random_instances_for_query
from repro.workloads.random_instances import RandomInstanceParams

N_PROBLEMS = 32
PER_SHARD_CACHE = 16  # < N_PROBLEMS: a single shard must thrash
ROUNDS = 8
SHARD_COUNTS = (1, 2, 4)
BURST = 48


def _working_set():
    """Distinct problem *classes* (compile-heavy, decide-cheap) + one
    instance each.  ``R(x|y) ∧ S(y|'ci')`` with ``R[2]→S`` routes to
    ``fo-rewriting``: plan compilation (~0.5 ms) dwarfs a warm decide
    (~0.04 ms), which is exactly the regime where plan-cache capacity
    decides throughput.  The per-problem constant keeps the classes
    distinct under renaming-isomorphism canonicalization (``Ri``/``Si``
    renamings alone would all share one class, one plan, one shard)."""
    items = []
    for i in range(N_PROBLEMS):
        problem = Problem.of(
            "R(x | y)", f"S(y | 'e17-{i}')", fks=["R[2]->S"],
            name=f"e17-{i}",
        )
        db = next(
            iter(
                random_instances_for_query(
                    problem.query, problem.fks, 1, seed=1000 + i
                )
            )
        )
        items.append((problem, db))
    classes = {problem.fingerprint.digest for problem, _ in items}
    assert len(classes) == N_PROBLEMS, "working set must span N classes"
    return items


def _serve_stream(n_shards: int, items) -> tuple[float, list[bool]]:
    """Round-robin the stream through a sharded engine; return (seconds,
    answers)."""
    config = SessionConfig(plan_cache_size=PER_SHARD_CACHE)
    answers: list[bool] = []
    with ShardedEngine(n_shards, config) as sharded:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            for problem, db in items:
                answers.append(sharded.decide(problem, db).certain)
        elapsed = time.perf_counter() - start
    return elapsed, answers


def test_e17_throughput_scales_with_shard_count():
    items = _working_set()
    requests = ROUNDS * len(items)
    results = {}
    rows = []
    for n_shards in SHARD_COUNTS:
        elapsed, answers = _serve_stream(n_shards, items)
        results[n_shards] = (elapsed, answers)
        record_result(
            "e17_serve_scaling", f"threads-{n_shards}",
            metrics={
                "elapsed_ms": elapsed * 1e3,
                "throughput_rps": requests / elapsed,
            },
            config={
                "shards": n_shards,
                "cache_per_shard": PER_SHARD_CACHE,
                "distinct_classes": len(items),
                "requests": requests,
            },
        )
        rows.append(
            (
                f"{n_shards} shard(s)",
                f"{elapsed * 1e3:.1f} ms",
                f"{requests / elapsed:,.0f}/s",
                f"cache/shard={PER_SHARD_CACHE}, distinct={len(items)}",
            )
        )
    report(
        f"E17a: sharded plan-cache scaling ({requests} requests, "
        f"round-robin over {len(items)} problems)",
        rows,
        ("series", "elapsed", "throughput", "configuration"),
    )

    baseline = results[SHARD_COUNTS[0]]
    for n_shards in SHARD_COUNTS[1:]:
        assert results[n_shards][1] == baseline[1], "answers must not differ"
    # the acceptance criterion: more shards → more aggregate cache → faster
    widest = results[SHARD_COUNTS[-1]][0]
    assert widest < baseline[0], (
        f"{SHARD_COUNTS[-1]} shards ({widest:.3f}s) should beat 1 shard "
        f"({baseline[0]:.3f}s): the single cache must thrash on "
        f"{len(items)} > {PER_SHARD_CACHE} distinct problems"
    )


def _burst_through_server(max_batch: int) -> tuple[float, list[bool], dict]:
    problem = Problem.of(
        "R(x | y)", "S(y | z)", fks=["R[2]->S"], name="e17-burst"
    )
    dbs = list(
        random_instances_for_query(problem.query, problem.fks, BURST, seed=17)
    )
    config = ServerConfig(
        shards=2, max_batch=max_batch, linger_ms=20, plan_cache_size=8
    )
    with BackgroundServer(config) as background:
        host, port = background.address

        async def fire():
            async with await AsyncServeClient.connect(host, port) as client:
                start = time.perf_counter()
                results = await asyncio.gather(
                    *[client.decide(problem, db) for db in dbs]
                )
                return time.perf_counter() - start, results

        elapsed, results = asyncio.run(fire())
        with ServeClient(host, port) as stats_client:
            server_stats = stats_client.stats()["server"]
    answers = [r["decision"]["certain"] for r in results]
    return elapsed, answers, server_stats


def test_e17_micro_batching_groups_requests():
    rows = []
    outcomes = {}
    for max_batch in (1, 16):
        elapsed, answers, stats = _burst_through_server(max_batch)
        outcomes[max_batch] = (answers, stats)
        record_result(
            "e17_serve_scaling", f"micro-batch-{max_batch}",
            metrics={
                "elapsed_ms": elapsed * 1e3,
                "throughput_rps": len(answers) / elapsed,
                "micro_batches": stats["micro_batches"],
            },
            config={"max_batch": max_batch, "burst": BURST},
        )
        rows.append(
            (
                f"max_batch={max_batch}",
                f"{elapsed * 1e3:.1f} ms",
                f"{len(answers) / elapsed:,.0f}/s",
                f"{stats['micro_batches']} engine batches "
                f"for {stats['verbs'].get('decide', 0)} decides",
            )
        )
    report(
        f"E17b: micro-batching a burst of {BURST} concurrent decides "
        "(one problem, loopback server)",
        rows,
        ("series", "elapsed", "throughput", "batching"),
    )

    assert outcomes[1][0] == outcomes[16][0], "answers must not differ"
    # disabled: every request is its own engine batch
    assert outcomes[1][1]["micro_batches"] == BURST
    # enabled: the burst collapses into far fewer engine batches
    assert outcomes[16][1]["micro_batches"] < BURST
    assert outcomes[16][1]["batched_requests"] > 0


# -- E17c: thread shards vs process shards on a CPU-bound stream -------------

E17C_SHARD_COUNTS = (1, 2, 4)
E17C_CLASSES = 8
E17C_INSTANCES_PER_CLASS = 4
E17C_ROUNDS = 2


def _cpu_bound_stream():
    """A mixed stream whose decides cost milliseconds of pure Python.

    Half the classes are FO chains over ~1000-block instances (the
    in-memory rewriting evaluator does the work), half are Proposition 17
    chains over ~500-block instances (the polynomial dual-Horn solver
    does).  Wire documents stay ~10–25 KB, so in the process fleet the
    per-request JSON cost is an order of magnitude below the decide cost —
    the regime where parallel interpreters pay off.  Constants keep the
    classes distinct (and spread over the shard ring)."""
    items = []
    for i in range(E17C_CLASSES):
        if i % 2 == 0:
            problem = Problem.of(
                "R(x | y)", f"S(y | 'c{i}')", fks=["R[2]->S"],
                name=f"e17c-fo-{i}",
            )
            params = RandomInstanceParams(
                blocks_per_relation=900, max_block_size=3,
                domain_size=1800,
            )
        else:
            problem = Problem.of(
                f"N(x | 'c{i}', y)", "O(y |)", fks=["N[3]->O"],
                name=f"e17c-horn-{i}",
            )
            params = RandomInstanceParams(
                blocks_per_relation=500, max_block_size=3,
                domain_size=1000,
            )
        dbs = random_instances_for_query(
            problem.query, problem.fks, E17C_INSTANCES_PER_CLASS,
            seed=170 + i, params=params,
        )
        items.extend((problem, db) for db in dbs)
    return items


def _drive_engine(engine, items, n_threads: int) -> tuple[float, list[bool]]:
    """Warm every class's plan, then time *n_threads* concurrent callers
    working through the repeated stream; answers come back stream-ordered."""
    warmed = set()
    for problem, db in items:
        if problem.fingerprint.digest not in warmed:
            warmed.add(problem.fingerprint.digest)
            engine.decide(problem, db)
    stream = [pair for _ in range(E17C_ROUNDS) for pair in items]
    answers: list[bool | None] = [None] * len(stream)
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        start = time.perf_counter()
        futures = {
            pool.submit(engine.decide, problem, db): index
            for index, (problem, db) in enumerate(stream)
        }
        for future in futures:
            answers[futures[future]] = bool(future.result().certain)
        elapsed = time.perf_counter() - start
    return elapsed, answers


def _phase_delta(before: dict, after: dict) -> dict[str, tuple[int, float]]:
    """``{phase: (spans, total_seconds)}`` accumulated between two
    :meth:`~repro.obs.SpanRecorder.phase_snapshots` calls."""
    delta: dict[str, tuple[int, float]] = {}
    for name, snap in after.items():
        prev = before.get(name)
        count = snap.evaluations - (prev.evaluations if prev else 0)
        total = snap.total_seconds - (prev.total_seconds if prev else 0.0)
        if count > 0:
            delta[name] = (count, total)
    return delta


def _merge_phase(totals: dict, name: str, count: int, seconds: float) -> None:
    have_count, have_seconds = totals.get(name, (0, 0.0))
    totals[name] = (have_count + count, have_seconds + seconds)


def test_e17c_process_shards_beat_thread_shards_when_cpu_bound():
    items = _cpu_bound_stream()
    requests = E17C_ROUNDS * len(items)
    cores = len(os.sched_getaffinity(0))
    widest = E17C_SHARD_COUNTS[-1]
    rows = []
    results: dict[tuple[str, int], tuple[float, list[bool]]] = {}
    phases: dict[str, dict[str, tuple[int, float]]] = {}
    for n_shards in E17C_SHARD_COUNTS:
        with ShardedEngine(n_shards) as threaded:
            before = recorder().phase_snapshots()
            results["threads", n_shards] = _drive_engine(
                threaded, items, n_shards
            )
            if n_shards == widest:
                phases["threads"] = _phase_delta(
                    before, recorder().phase_snapshots()
                )
        with FleetEngine(n_shards) as fleet:
            before = recorder().phase_snapshots()
            results["processes", n_shards] = _drive_engine(
                fleet, items, n_shards
            )
            if n_shards == widest:
                # front side: the wire hops; worker side: everything the
                # worker processes recorded (fresh workers, so cumulative
                # == this drive, warm-up pass included on both sides).
                merged = _phase_delta(before, recorder().phase_snapshots())
                for name, snap in fleet.worker_phases().items():
                    _merge_phase(
                        merged, name, snap.evaluations, snap.total_seconds
                    )
                phases["processes"] = merged
        for mode in ("threads", "processes"):
            elapsed, _ = results[mode, n_shards]
            record_result(
                "e17_serve_scaling", f"cpu-bound-{mode}-{n_shards}",
                metrics={
                    "elapsed_ms": elapsed * 1e3,
                    "throughput_rps": requests / elapsed,
                },
                config={
                    "mode": mode,
                    "shards": n_shards,
                    "requests": requests,
                    "cores": cores,
                },
            )
            rows.append(
                (
                    f"{n_shards} × {mode}",
                    f"{elapsed * 1e3:.0f} ms",
                    f"{requests / elapsed:,.0f}/s",
                    f"{elapsed / results['threads', 1][0]:.2f}x of serial",
                )
            )
    report(
        f"E17c: thread vs process shards, CPU-bound mixed stream "
        f"({requests} requests over {E17C_CLASSES} classes, "
        f"{cores} core(s))",
        rows,
        ("series", "elapsed", "throughput", "vs 1-thread-shard"),
    )

    phase_rows = []
    for mode in ("threads", "processes"):
        wall = results[mode, widest][0]
        for name, (count, total) in sorted(
            phases[mode].items(), key=lambda kv: -kv[1][1]
        ):
            phase_rows.append(
                (
                    f"{widest} × {mode}",
                    name,
                    f"{count}",
                    f"{total * 1e3:,.0f} ms",
                    f"{total * 1e3 / count:.3f} ms",
                    f"{total / wall:.2f}x wall",
                )
            )
    report(
        f"E17d: per-phase span attribution at {widest} shards "
        "(warm-up pass included; totals sum across shards, so CPU-bound "
        "phases exceed 1x wall when shards run in parallel)",
        phase_rows,
        ("series", "phase", "spans", "total", "mean/span", "vs wall"),
    )

    # thread shards solve in-process: no wire hop is ever recorded;
    # the fleet front records one `transport` span per request and the
    # workers record the `solve`s under their own sites.
    assert "solve" in phases["threads"]
    assert "transport" not in phases["threads"]
    assert "transport" in phases["processes"]
    assert "solve" in phases["processes"]

    baseline = results["threads", 1][1]
    for key, (_, answers) in results.items():
        assert answers == baseline, f"{key}: answers must not differ"
    if cores >= 2:
        assert (
            results["processes", widest][0] < results["threads", widest][0]
        ), (
            f"{widest} process shards must beat {widest} thread shards on "
            f"a CPU-bound stream with {cores} cores: the thread engine is "
            "GIL-bound while worker processes decide in parallel"
        )
