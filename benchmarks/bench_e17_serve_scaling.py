"""E17 — the serving layer: throughput vs shard count and micro-batch size.

Extension experiment, companion to E15/E16: the `repro.serve` layer scales
consistent query answering along two axes.

**Sharding.**  A mixed stream whose distinct-problem working set exceeds
one engine's plan cache thrashes: every recurrence of an evicted problem
repays classification, routing and rewriting construction.  Routing by
consistent hashing on the problem fingerprint splits the working set, so
aggregate cache capacity grows with the shard count and each shard's LRU
stays hot.  The report serves the same round-robin problem stream through
1, 2 and 4 shards and **asserts** throughput rises from 1 to the widest
configuration (answers must be identical throughout).

**Micro-batching.**  Concurrent requests for the same fingerprint can be
folded into one ``decide_batch`` — one plan-cache lookup, one warm
prepared solver, one executor round-trip.  The report fires a fixed burst
of concurrent remote decides through a loopback server with micro-batching
disabled (``max_batch=1``) and enabled (``max_batch=16``), asserting the
enabled server really groups (fewer engine batches than requests) while
answers stay identical.
"""

import asyncio
import time

from benchmarks.conftest import report
from repro.api import Problem
from repro.serve import (
    AsyncServeClient,
    BackgroundServer,
    ServeClient,
    ServerConfig,
    ShardedEngine,
)
from repro.api.session import SessionConfig
from repro.workloads import random_instances_for_query

N_PROBLEMS = 32
PER_SHARD_CACHE = 16  # < N_PROBLEMS: a single shard must thrash
ROUNDS = 8
SHARD_COUNTS = (1, 2, 4)
BURST = 48


def _working_set():
    """Distinct FO problems (compile-heavy, decide-cheap) + one instance
    each.  ``R(x|y) ∧ S(y|z)`` with ``R[2]→S`` routes to ``fo-rewriting``:
    plan compilation (~0.5 ms) dwarfs a warm decide (~0.04 ms), which is
    exactly the regime where plan-cache capacity decides throughput."""
    items = []
    for i in range(N_PROBLEMS):
        problem = Problem.of(
            f"R{i}(x | y)", f"S{i}(y | z)", fks=[f"R{i}[2]->S{i}"],
            name=f"e17-{i}",
        )
        db = next(
            iter(
                random_instances_for_query(
                    problem.query, problem.fks, 1, seed=1000 + i
                )
            )
        )
        items.append((problem, db))
    return items


def _serve_stream(n_shards: int, items) -> tuple[float, list[bool]]:
    """Round-robin the stream through a sharded engine; return (seconds,
    answers)."""
    config = SessionConfig(plan_cache_size=PER_SHARD_CACHE)
    answers: list[bool] = []
    with ShardedEngine(n_shards, config) as sharded:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            for problem, db in items:
                answers.append(sharded.decide(problem, db).certain)
        elapsed = time.perf_counter() - start
    return elapsed, answers


def test_e17_throughput_scales_with_shard_count():
    items = _working_set()
    requests = ROUNDS * len(items)
    results = {}
    rows = []
    for n_shards in SHARD_COUNTS:
        elapsed, answers = _serve_stream(n_shards, items)
        results[n_shards] = (elapsed, answers)
        rows.append(
            (
                f"{n_shards} shard(s)",
                f"{elapsed * 1e3:.1f} ms",
                f"{requests / elapsed:,.0f}/s",
                f"cache/shard={PER_SHARD_CACHE}, distinct={len(items)}",
            )
        )
    report(
        f"E17a: sharded plan-cache scaling ({requests} requests, "
        f"round-robin over {len(items)} problems)",
        rows,
        ("series", "elapsed", "throughput", "configuration"),
    )

    baseline = results[SHARD_COUNTS[0]]
    for n_shards in SHARD_COUNTS[1:]:
        assert results[n_shards][1] == baseline[1], "answers must not differ"
    # the acceptance criterion: more shards → more aggregate cache → faster
    widest = results[SHARD_COUNTS[-1]][0]
    assert widest < baseline[0], (
        f"{SHARD_COUNTS[-1]} shards ({widest:.3f}s) should beat 1 shard "
        f"({baseline[0]:.3f}s): the single cache must thrash on "
        f"{len(items)} > {PER_SHARD_CACHE} distinct problems"
    )


def _burst_through_server(max_batch: int) -> tuple[float, list[bool], dict]:
    problem = Problem.of(
        "R(x | y)", "S(y | z)", fks=["R[2]->S"], name="e17-burst"
    )
    dbs = list(
        random_instances_for_query(problem.query, problem.fks, BURST, seed=17)
    )
    config = ServerConfig(
        shards=2, max_batch=max_batch, linger_ms=20, plan_cache_size=8
    )
    with BackgroundServer(config) as background:
        host, port = background.address

        async def fire():
            async with await AsyncServeClient.connect(host, port) as client:
                start = time.perf_counter()
                results = await asyncio.gather(
                    *[client.decide(problem, db) for db in dbs]
                )
                return time.perf_counter() - start, results

        elapsed, results = asyncio.run(fire())
        with ServeClient(host, port) as stats_client:
            server_stats = stats_client.stats()["server"]
    answers = [r["decision"]["certain"] for r in results]
    return elapsed, answers, server_stats


def test_e17_micro_batching_groups_requests():
    rows = []
    outcomes = {}
    for max_batch in (1, 16):
        elapsed, answers, stats = _burst_through_server(max_batch)
        outcomes[max_batch] = (answers, stats)
        rows.append(
            (
                f"max_batch={max_batch}",
                f"{elapsed * 1e3:.1f} ms",
                f"{len(answers) / elapsed:,.0f}/s",
                f"{stats['micro_batches']} engine batches "
                f"for {stats['verbs'].get('decide', 0)} decides",
            )
        )
    report(
        f"E17b: micro-batching a burst of {BURST} concurrent decides "
        "(one problem, loopback server)",
        rows,
        ("series", "elapsed", "throughput", "batching"),
    )

    assert outcomes[1][0] == outcomes[16][0], "answers must not differ"
    # disabled: every request is its own engine batch
    assert outcomes[1][1]["micro_batches"] == BURST
    # enabled: the burst collapses into far fewer engine batches
    assert outcomes[16][1]["micro_batches"] < BURST
    assert outcomes[16][1]["batched_requests"] > 0
