"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one experiment id of DESIGN.md §4 and
prints the series the paper's artifact defines (correctness rows) besides
timing the relevant code paths with pytest-benchmark.
"""

from __future__ import annotations


def report(title: str, rows: list[tuple], header: tuple[str, ...]) -> None:
    """Print a small aligned table (shown with ``pytest -s`` and captured in
    bench_output.txt)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(h)
        for i, h in enumerate(header)
    ]
    print()
    print(title)
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
