"""E7 — the Fig. 4 reduction table: which lemma fires, and the two
realizations of each reduction.

Paper artifact: Fig. 4 (the four removal lemmas).  The report shows, for a
spectrum of FO problems, the pipeline trace (lemmas fired in order) and the
size of the resulting formula.  The ablation compares deciding via the
composed formula (relativization) against the forward instance-transforming
pipeline — DESIGN.md's 'rewriting as relativization' call-out.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.core.decision import decide
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.core.rewriting import consistent_rewriting
from repro.fo import Evaluator
from repro.fo.simplify import size
from repro.workloads import random_instances_for_query

PROBLEMS = [
    ("weak-pair", ["A(x | y)", "B(x | z)"], ["A[1]->B", "B[1]->A"]),
    ("oo-chain", ["R(x | y)", "S(y | z)", "T(z | w)"],
     ["R[2]->S", "S[2]->T"]),
    ("dd", ["R(x | y)", "S(y | z)", "P(y |)", "Q(z |)"], ["R[2]->S"]),
    ("empty-key", ["N('c' | y)", "O(y |)", "P(y |)"], ["N[2]->O"]),
    ("do", ["Y(y |)", "N(x | y, u)", "O(y |)"], ["N[2]->O"]),
    ("mixed", ["DOCS(x | t, '2016')", "R(x, y |)",
               "AUTHORS(y | 'Jeff', z)"],
     ["R[1]->DOCS", "R[2]->AUTHORS"]),
]


def test_e07_report():
    rows = []
    for label, atoms, fk_texts in PROBLEMS:
        q = parse_query(*atoms)
        fks = fk_set(q, *fk_texts)
        result = consistent_rewriting(q, fks)
        trace = " → ".join(
            step.lemma.replace("Lemma ", "L") for step in result.steps
        )
        rows.append((label, trace or "(direct)", size(result.formula)))
    report("E7: Fig. 4 pipeline traces", rows,
           ("problem", "lemmas fired", "formula size"))


@pytest.mark.parametrize("label,atoms,fk_texts", PROBLEMS,
                         ids=[p[0] for p in PROBLEMS])
def test_e07_pipeline_construction(benchmark, label, atoms, fk_texts):
    q = parse_query(*atoms)
    fks = fk_set(q, *fk_texts)
    benchmark(lambda: consistent_rewriting(q, fks))


@pytest.mark.parametrize(
    "label,atoms,fk_texts", PROBLEMS[:3], ids=[p[0] for p in PROBLEMS[:3]]
)
def test_e07_formula_vs_procedural(benchmark, label, atoms, fk_texts):
    """Ablation: evaluate the composed formula vs run the forward pipeline."""
    q = parse_query(*atoms)
    fks = fk_set(q, *fk_texts)
    formula = consistent_rewriting(q, fks).formula
    dbs = list(random_instances_for_query(q, fks, 10, seed=7))

    def both_paths():
        outcomes = []
        for db in dbs:
            via_formula = Evaluator(db).evaluate(formula)
            via_pipeline = decide(q, fks, db, check_classification=False)
            assert via_formula == via_pipeline
            outcomes.append(via_formula)
        return outcomes

    benchmark(both_paths)
