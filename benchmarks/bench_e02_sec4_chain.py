"""E2 — the Section-4 block-interference chain.

Paper artifact: the parametric instance opening Section 4; certain iff the
last block's marker □ equals c, and dropping O(1) always gives a
no-instance.  Timings: the P-time dual-Horn solver scales linearly in the
chain length while the exact ⊕-oracle explodes — the concrete cost of
block-interference.
"""

import pytest

from benchmarks.conftest import report
from repro.repairs import OracleConfig, certain_answer
from repro.solvers import certain_by_dual_horn
from repro.workloads import (
    ChainParams,
    chain_instance,
    chain_problem,
    expected_certainty,
)


def test_e02_report():
    rows = []
    for n in (4, 16, 64, 256, 1024, 2048):
        for marker in ("c", "d"):
            params = ChainParams(n, marker)
            db = chain_instance(params)
            got = certain_by_dual_horn(db, "c")
            rows.append((n, marker, got, expected_certainty(params)))
    seedless = ChainParams(16, "c", with_seed_fact=False)
    rows.append(("16 (no O(1))", "c",
                 certain_by_dual_horn(chain_instance(seedless), "c"),
                 expected_certainty(seedless)))
    report("E2: Section-4 chain, certain iff □ = c", rows,
           ("n", "□", "certain", "expected"))
    assert all(got == want for *_, got, want in rows)


@pytest.mark.parametrize("n", [16, 128, 1024])
def test_e02_dual_horn_scaling(benchmark, n):
    db = chain_instance(ChainParams(n, "c"))
    benchmark(lambda: certain_by_dual_horn(db, "c"))


@pytest.mark.parametrize("n", [2, 4, 6])
def test_e02_oracle_explodes(benchmark, n):
    """The exponential comparator: keep-choice space is ~3^n·2."""
    q, fks = chain_problem()
    db = chain_instance(ChainParams(n, "c"))
    config = OracleConfig(max_keep_choices=10_000_000)
    benchmark(lambda: certain_answer(q, fks, db, config).certain)
