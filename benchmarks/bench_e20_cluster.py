"""E20 — distributed fleet: local worker processes vs TCP cluster workers.

Extension experiment, companion to E17c: the `repro.cluster` control
plane serves the same verbs as the local process fleet, but its workers
are *joined* over the wire (registration + heartbeats + HMAC auth)
instead of spawned by a supervisor, and the controller reaches them
through ``RemoteWorkerHandle``s speaking the client protocol to each
worker's advertised address.

The experiment drives one decide-cheap mixed stream (8 distinct problem
classes, the plan-cache-bound regime of E17a) through two deployments at
1, 2 and 4 shards, both behind the same loopback front and driven by the
same blocking client:

* **processes-N** — ``repro serve --processes N``: the supervisor spawns
  N local single-shard workers over private loopback sockets;
* **cluster-N** — a ``--controller`` front plus N ``--join`` worker
  agents with shared-secret auth: same wire hops, plus the control
  plane (membership, heartbeats, auth handshake on every dial).

Answers must be identical everywhere — routing by canonical class digest
over the same ring guarantees the two fleets agree on placement. The
table quantifies what the control plane costs on top of the process
fleet's wire overhead (at equal width the two should be close: the auth
handshake is per-connection, not per-request, and heartbeats are
off-path). Results land in ``BENCH_e20_cluster.json``.
"""

import time

from benchmarks.conftest import report
from benchmarks.result_io import record_result
from repro.api import Problem
from repro.cluster import AgentConfig, ClusterMembership, WorkerAgent
from repro.cluster.controller import controller_factory
from repro.core.schema import Schema
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.serve import BackgroundServer, ServeClient, ServerConfig
from repro.store.delta import Delta
from repro.workloads import random_instances_for_query

SECRET = "bench-e20-secret"
SHARD_COUNTS = (1, 2, 4)
N_CLASSES = 8
ROUNDS = 6

# the replication series: a mutation-heavy stored-ref stream
N_REFS = 6
MUTATION_ROUNDS = 5
REPLICATION_WIDTH = 2


def _working_set():
    """Distinct decide-cheap classes (the per-class constant keeps them
    distinct under canonicalization, spreading them over the ring)."""
    items = []
    for i in range(N_CLASSES):
        problem = Problem.of(
            "R(x | y)", f"S(y | 'e20-{i}')", fks=["R[2]->S"],
            name=f"e20-{i}",
        )
        db = next(
            iter(
                random_instances_for_query(
                    problem.query, problem.fks, 1, seed=2000 + i
                )
            )
        )
        items.append((problem, db))
    return items


def _drive(client: ServeClient, items) -> tuple[float, list[bool]]:
    """Warm every class's plan, then time ROUNDS sequential passes."""
    for problem, db in items:
        client.decide(problem, db)
    answers: list[bool] = []
    start = time.perf_counter()
    for _ in range(ROUNDS):
        for problem, db in items:
            answers.append(bool(client.decide(problem, db).certain))
    return time.perf_counter() - start, answers


def _process_fleet(n: int, items) -> tuple[float, list[bool]]:
    config = ServerConfig(processes=n, linger_ms=0.0)
    with BackgroundServer(config) as background:
        with ServeClient(*background.address, timeout=60.0) as client:
            return _drive(client, items)


def _tcp_cluster(n: int, items) -> tuple[float, list[bool]]:
    ctrl_config = ServerConfig(
        shards=1, linger_ms=0.0, auth_secret=SECRET
    )
    factory = controller_factory(
        membership=ClusterMembership(heartbeat_timeout=30.0)
    )
    agents = []
    with BackgroundServer(ctrl_config, server_factory=factory) as ctrl:
        host, port = ctrl.address
        try:
            for i in range(n):
                agents.append(
                    WorkerAgent(
                        ServerConfig(shards=1, linger_ms=0.0),
                        AgentConfig(
                            controller_host=host,
                            controller_port=port,
                            name=f"bench-{i}",
                            auth_secret=SECRET,
                        ),
                    ).start()
                )
            with ServeClient(
                host, port, auth_secret=SECRET, timeout=60.0
            ) as client:
                status = client.stats()["server"]["cluster"]
                assert status["workers"] == n, status
                return _drive(client, items)
        finally:
            for agent in agents:
                agent.stop()


def test_e20_cluster_matches_process_fleet_answers():
    items = _working_set()
    requests = ROUNDS * len(items)
    results: dict[tuple[str, int], tuple[float, list[bool]]] = {}
    rows = []
    for n in SHARD_COUNTS:
        results["processes", n] = _process_fleet(n, items)
        results["cluster", n] = _tcp_cluster(n, items)
        for mode in ("processes", "cluster"):
            elapsed, answers = results[mode, n]
            assert len(answers) == requests
            record_result(
                "e20_cluster", f"{mode}-{n}",
                metrics={
                    "elapsed_ms": elapsed * 1e3,
                    "throughput_rps": requests / elapsed,
                },
                config={
                    "mode": mode,
                    "shards": n,
                    "requests": requests,
                    "distinct_classes": len(items),
                },
            )
            rows.append(
                (
                    f"{n} × {mode}",
                    f"{elapsed * 1e3:.0f} ms",
                    f"{requests / elapsed:,.0f}/s",
                    f"{elapsed / results['processes', n][0]:.2f}x of "
                    "local processes",
                )
            )
    report(
        f"E20: local process fleet vs TCP cluster workers "
        f"({requests} requests over {len(items)} classes)",
        rows,
        ("series", "elapsed", "throughput", "vs same-width processes"),
    )

    baseline = results["processes", SHARD_COUNTS[0]][1]
    for key, (_, answers) in results.items():
        assert answers == baseline, f"{key}: answers must not differ"


def _ref_problem(i: int) -> Problem:
    return Problem.of(
        "R(x | y)", f"S(y | 'rep-{i}')", fks=["R[2]->S"],
        name=f"e20-rep-{i}",
    )


def _ref_instance(i: int) -> DatabaseInstance:
    return DatabaseInstance.build(
        Schema.of(R=(2, 1), S=(2, 1)),
        {"R": [("a", "b")], "S": [("b", f"rep-{i}")]},
    )


def _drive_mutations(
    replication: bool,
) -> tuple[float, list[int], dict]:
    """Put N_REFS stored refs, then MUTATION_ROUNDS rounds of patch +
    ref decide each, through a REPLICATION_WIDTH-wide TCP cluster.
    The clock includes the final mirror-backlog flush, so the `on`
    series pays replication's full end-to-end cost, not just the
    enqueue."""
    ctrl_config = ServerConfig(
        shards=1, linger_ms=0.0, auth_secret=SECRET
    )
    factory = controller_factory(
        membership=ClusterMembership(heartbeat_timeout=30.0),
        replication=replication,
    )
    agents = []
    with BackgroundServer(ctrl_config, server_factory=factory) as ctrl:
        host, port = ctrl.address
        try:
            for i in range(REPLICATION_WIDTH):
                agents.append(
                    WorkerAgent(
                        ServerConfig(shards=1, linger_ms=0.0),
                        AgentConfig(
                            controller_host=host,
                            controller_port=port,
                            name=f"bench-rep-{i}",
                            auth_secret=SECRET,
                        ),
                    ).start()
                )
            engine = ctrl.server.cluster_engine
            with ServeClient(
                host, port, auth_secret=SECRET, timeout=60.0
            ) as client:
                status = client.stats()["server"]["cluster"]
                assert status["workers"] == REPLICATION_WIDTH, status
                start = time.perf_counter()
                for i in range(N_REFS):
                    client.put_instance(f"rep-{i}", _ref_instance(i))
                for round_no in range(MUTATION_ROUNDS):
                    for i in range(N_REFS):
                        delta = Delta.of(adds=[
                            Fact("R", (f"k{round_no}", "b"), 1)
                        ])
                        client.patch_instance(
                            f"rep-{i}", delta,
                            expect_version=round_no + 1,
                        )
                        client.decide(_ref_problem(i), ref=f"rep-{i}")
                assert engine.flush_replication(timeout=60.0)
                elapsed = time.perf_counter() - start
                versions = [
                    client.get_instance(f"rep-{i}")[1]
                    for i in range(N_REFS)
                ]
                replication_stats = client.stats()["server"]["cluster"][
                    "replication"
                ]
                return elapsed, versions, replication_stats
        finally:
            for agent in agents:
                agent.stop()


def test_e20_replication_overhead_at_equal_width():
    """Replication on vs off at equal width: what mirroring every
    mutation to the ring successor costs a mutation-heavy stream."""
    mutations = N_REFS * (1 + MUTATION_ROUNDS)
    series: dict[str, tuple[float, list[int], dict]] = {}
    for label, enabled in (("off", False), ("on", True)):
        series[label] = _drive_mutations(enabled)
        elapsed, versions, stats = series[label]
        assert versions == [MUTATION_ROUNDS + 1] * N_REFS, versions
        assert stats["enabled"] is enabled
        record_result(
            "e20_cluster", f"replication-{label}-{REPLICATION_WIDTH}",
            metrics={
                "elapsed_ms": elapsed * 1e3,
                "mutations_per_s": mutations / elapsed,
                "replicated": stats["replicated"],
                "catchups": stats["catchups"],
            },
            config={
                "mode": "replication",
                "replication": enabled,
                "shards": REPLICATION_WIDTH,
                "refs": N_REFS,
                "mutations": mutations,
                "decides": N_REFS * MUTATION_ROUNDS,
            },
        )
    on, off = series["on"], series["off"]
    assert on[2]["replicated"] >= N_REFS  # every ref reached its successor
    assert off[2]["replicated"] == 0
    report(
        f"E20: replication overhead at width {REPLICATION_WIDTH} "
        f"({mutations} mutations + {N_REFS * MUTATION_ROUNDS} ref "
        f"decides, mirror flush included)",
        [
            (
                f"replication {label}",
                f"{elapsed * 1e3:.0f} ms",
                f"{mutations / elapsed:,.0f} mut/s",
                f"replicated={stats['replicated']} "
                f"catchups={stats['catchups']}",
            )
            for label, (elapsed, _, stats) in series.items()
        ],
        ("series", "elapsed", "mutation throughput", "mirror traffic"),
    )
