"""E4 — obedience: Theorem 7's syntactic test vs the semantic chase test.

Paper artifact: Examples 6 and 10/11 (obedience verdicts driving
block-interference).  The ablation DESIGN.md calls out: the syntactic
characterization is orders of magnitude cheaper than deciding Definition 5
by the chase, while agreeing everywhere.
"""

import pytest

from benchmarks.conftest import report
from repro.core.foreign_keys import fk_set
from repro.core.obedience import (
    nonkey_positions,
    semantic_obedient,
    syntactic_obedient,
    syntactic_verdict,
)
from repro.core.query import parse_query

CONFIGS = [
    ("example6-P0", ["N(x | 'c', y)", "O(y |)"], ["N[3]->O"], [("N", 2)]),
    ("example6-P1", ["N(x | 'c', y)", "O(y |)"], ["N[3]->O"], [("N", 3)]),
    ("shared-var", ["N(x | y)", "O(y |)", "P(y |)"], ["N[2]->O"], [("N", 2)]),
    ("repeated", ["N(x | y)", "O(y | z, z)"], ["N[2]->O"], [("N", 2)]),
    ("clean", ["N(x | y)", "O(y | w)"], ["N[2]->O"], [("N", 2)]),
    ("two-hops", ["N(x | y)", "O(y | z)", "T(z | w)"],
     ["N[2]->O", "O[2]->T"], [("N", 2)]),
]


def test_e04_report():
    rows = []
    for label, atoms, fk_texts, positions in CONFIGS:
        q = parse_query(*atoms)
        fks = fk_set(q, *fk_texts)
        verdict = syntactic_verdict(q, fks, positions)
        semantic = semantic_obedient(q, fks, positions)
        rows.append(
            (label, verdict.obedient, verdict.violated or "-", semantic)
        )
        assert verdict.obedient == semantic
    report("E4: obedience, Theorem 7 vs Definition 5 (chase)", rows,
           ("config", "syntactic", "violated", "semantic"))


@pytest.mark.parametrize("label,atoms,fk_texts,positions", CONFIGS,
                         ids=[c[0] for c in CONFIGS])
def test_e04_syntactic_speed(benchmark, label, atoms, fk_texts, positions):
    q = parse_query(*atoms)
    fks = fk_set(q, *fk_texts)
    benchmark(lambda: syntactic_obedient(q, fks, positions))


@pytest.mark.parametrize("label,atoms,fk_texts,positions", CONFIGS[:3],
                         ids=[c[0] for c in CONFIGS[:3]])
def test_e04_semantic_speed(benchmark, label, atoms, fk_texts, positions):
    q = parse_query(*atoms)
    fks = fk_set(q, *fk_texts)
    benchmark(lambda: semantic_obedient(q, fks, positions))


def test_e04_full_atom_scan(benchmark):
    """Classifying every non-key position set of a wider query."""
    q = parse_query(
        "A(x | a1, a2)", "B(a1 | b1)", "C(a2 | c1)", "D(b1 | d1)",
    )
    fks = fk_set(q, "A[2]->B", "A[3]->C", "B[2]->D")

    def scan():
        return [
            syntactic_obedient(q, fks, nonkey_positions(atom))
            for atom in q.atoms
        ]

    benchmark(scan)
