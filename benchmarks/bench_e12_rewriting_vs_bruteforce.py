"""E12 — the FO claim, measured: rewriting evaluation vs repair enumeration.

Paper artifact: Theorem 12's practical content — an FO problem is decided
by evaluating a fixed first-order formula (polynomial per instance) while
the definitional route enumerates exponentially many ⊕-repairs.  The
report shows the crossover on growing instances of the Example 4 problem;
the ablation compares the index-guided formula evaluator with the naive
block-count-driven oracle.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db import DatabaseInstance, Fact
from repro.fo import Evaluator
from repro.repairs import OracleConfig, certain_answer
from repro.solvers import RewritingSolver


def _problem():
    q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
    return q, fk_set(q, "R[2]->S", "S[2]->T")


def _instance(n_blocks, block_size=2):
    """n_blocks R-blocks, half of them fully supported through S and T."""
    facts = []
    for i in range(n_blocks):
        for j in range(block_size):
            facts.append(Fact("R", (("r", i), ("s", i, j)), 1))
        facts.append(Fact("S", (("s", i, 0), ("t", i)), 1))
        if i % 2 == 0:
            facts.append(Fact("T", (("t", i),), 1))
    return DatabaseInstance(facts)


def test_e12_report():
    q, fks = _problem()
    solver = RewritingSolver(q, fks)
    config = OracleConfig(max_keep_choices=50_000_000)
    rows = []
    for n_blocks in (1, 2, 3, 4, 5):
        db = _instance(n_blocks)
        start = time.perf_counter()
        fast = solver.decide(db)
        fast_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        slow = certain_answer(q, fks, db, config).certain
        slow_ms = (time.perf_counter() - start) * 1000
        assert fast == slow
        factor = slow_ms / fast_ms if fast_ms else float("inf")
        rows.append(
            (db.size, fast, f"{fast_ms:8.2f}", f"{slow_ms:8.2f}",
             f"{factor:7.1f}x")
        )
    report("E12: rewriting vs ⊕-repair enumeration (ms)", rows,
           ("|db|", "certain", "rewriting", "oracle", "speedup"))


@pytest.mark.parametrize("n_blocks", [50, 500, 2000])
def test_e12_rewriting_scaling(benchmark, n_blocks):
    q, fks = _problem()
    solver = RewritingSolver(q, fks)
    db = _instance(n_blocks)
    benchmark(lambda: solver.decide(db))


@pytest.mark.parametrize("n_blocks", [2, 4])
def test_e12_oracle_scaling(benchmark, n_blocks):
    q, fks = _problem()
    db = _instance(n_blocks)
    config = OracleConfig(max_keep_choices=50_000_000)
    benchmark(lambda: certain_answer(q, fks, db, config).certain)


def test_e12_evaluator_ablation(benchmark):
    """Index-guided evaluation vs the same formula on a cold evaluator
    (forcing index rebuilds) — DESIGN.md's third ablation."""
    q, fks = _problem()
    formula = RewritingSolver(q, fks).rewriting.formula
    db = _instance(300)

    def cold():
        return Evaluator(DatabaseInstance(db.facts)).evaluate(formula)

    benchmark(cold)
