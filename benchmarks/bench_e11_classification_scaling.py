"""E11 — decidability of Theorem 12: classification cost vs query size.

Paper artifact: "it can be decided, given q and FK, which case applies" —
attack-graph acyclicity is quadratic-time, block-interference polynomial.
The report classifies growing star/chain queries; timings sweep the query
size and split the cost between the attack graph and the interference
check.
"""

import pytest

from benchmarks.conftest import report
from repro.core.attack_graph import AttackGraph
from repro.core.classify import classify
from repro.core.foreign_keys import fk_set
from repro.core.interference import find_block_interference
from repro.core.query import parse_query


def _chain_query(n_atoms):
    """R0(x0|x1), R1(x1|x2), … with FK Ri[2]→Ri+1 — all o→o, FO."""
    atoms = [f"R{i}(x{i} | x{i + 1})" for i in range(n_atoms)]
    fk_texts = [f"R{i}[2]->R{i + 1}" for i in range(n_atoms - 1)]
    q = parse_query(*atoms)
    return q, fk_set(q, *fk_texts)


def _star_query(n_atoms):
    """Hub H(x|y1..yn) with spokes Si(yi|zi) and FK H[i+1]→Si."""
    spokes = " , ".join(f"y{i}" for i in range(n_atoms))
    q = parse_query(
        f"H(x | {spokes})",
        *[f"S{i}(y{i} | z{i})" for i in range(n_atoms)],
    )
    fk_texts = [f"H[{i + 2}]->S{i}" for i in range(n_atoms)]
    return q, fk_set(q, *fk_texts)


def test_e11_report():
    rows = []
    for n in (2, 4, 8, 16, 24):
        q, fks = _chain_query(n)
        result = classify(q, fks)
        rows.append((f"chain-{n}", len(q), len(fks), result.verdict.name))
    for n in (2, 4, 8):
        q, fks = _star_query(n)
        result = classify(q, fks)
        rows.append((f"star-{n}", len(q), len(fks), result.verdict.name))
    report("E11: classification across query sizes", rows,
           ("query", "|q|", "|FK|", "verdict"))


@pytest.mark.parametrize("n_atoms", [4, 8, 16, 24])
def test_e11_classify_chain(benchmark, n_atoms):
    q, fks = _chain_query(n_atoms)
    benchmark(lambda: classify(q, fks))


@pytest.mark.parametrize("n_atoms", [4, 8, 16])
def test_e11_attack_graph_only(benchmark, n_atoms):
    q, _ = _chain_query(n_atoms)
    benchmark(lambda: AttackGraph(q).is_acyclic())


@pytest.mark.parametrize("n_atoms", [4, 8, 16])
def test_e11_interference_only(benchmark, n_atoms):
    q, fks = _chain_query(n_atoms)
    benchmark(lambda: find_block_interference(q, fks))
