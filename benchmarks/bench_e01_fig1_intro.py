"""E1 — Fig. 1 and the introduction's query q0.

Paper artifact: the worked example of Section 1.  Expected rows: the
consistent answer to q0 on Fig. 1 is "no"; after the two cleaning actions
it flips to "yes"; q1 (with the guarding third atom) is "yes" already.
Timings compare the three decision paths on growing synthetic
bibliographies.
"""

import pytest

from benchmarks.conftest import report
from repro import certain, consistent_rewriting
from repro.core.decision import decide
from repro.db import Fact
from repro.fo import Evaluator
from repro.workloads import (
    BibliographyParams,
    fig1_instance,
    intro_query_q0,
    intro_query_q1,
    synthetic_bibliography,
)


def test_e01_report():
    q0, fks0 = intro_query_q0()
    q1, fks1 = intro_query_q1()
    db = fig1_instance()
    cleaned = db.difference(
        [
            Fact("AUTHORS", ("o1", "Jeffrey", "Ullman"), 1),
            Fact("R", ("d1", "o3"), 2),
        ]
    )
    rows = [
        ("q0 on Fig. 1", certain(q0, fks0, db), "no (paper)"),
        ("q0 after cleaning", certain(q0, fks0, cleaned), "yes"),
        ("q1 on Fig. 1", certain(q1, fks1, db), "yes"),
    ]
    report("E1: introduction answers", rows,
           ("query", "certain", "paper says"))
    assert [r[1] for r in rows] == [False, True, True]


@pytest.mark.parametrize("n_docs", [20, 80, 320])
def test_e01_rewriting_scaling(benchmark, n_docs):
    q0, fks0 = intro_query_q0()
    rewriting = consistent_rewriting(q0, fks0)
    db = synthetic_bibliography(
        BibliographyParams(
            n_docs=n_docs, n_authors=n_docs, n_authorships=2 * n_docs
        ),
        seed=1,
    )
    evaluator = Evaluator(db)
    benchmark(lambda: evaluator.evaluate(rewriting.formula))


def test_e01_procedural_path(benchmark):
    q0, fks0 = intro_query_q0()
    db = synthetic_bibliography(
        BibliographyParams(n_docs=40, n_authors=40, n_authorships=80), seed=1
    )
    benchmark(lambda: decide(q0, fks0, db, check_classification=False))


def test_e01_rewriting_construction(benchmark):
    q0, fks0 = intro_query_q0()
    benchmark(lambda: consistent_rewriting(q0, fks0))
