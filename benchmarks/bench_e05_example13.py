"""E5 — Example 13: the constant-substitution complexity seesaw.

Paper artifact: q1 (FO), q2 = q1[u→c] (NL-hard), q3 = q1[u,w→c,c] (FO),
plus the two-row instance separating CERTAINTY(q1, FK) from CERTAINTY(q1).
Timings: classification and (where admitted) rewriting construction and
evaluation for each of the three queries.
"""

import pytest

from benchmarks.conftest import report
from repro.core.classify import classify
from repro.core.rewriting import consistent_rewriting
from repro.core.rewriting_pk import rewrite_primary_keys
from repro.exceptions import NotInFOError
from repro.fo import evaluate
from repro.workloads import example13_problems, q1_distinguishing_instance


def test_e05_report():
    rows = []
    for label, query, fks, expected in example13_problems():
        verdict = classify(query, fks).verdict
        rows.append((label, verdict.name, expected.name))
        assert verdict == expected
    report("E5: Example 13 classification seesaw", rows,
           ("query", "verdict", "paper"))

    label, q1, fks1, _ = example13_problems()[0]
    db = q1_distinguishing_instance()
    with_fk = evaluate(consistent_rewriting(q1, fks1).formula, db)
    without_fk = evaluate(rewrite_primary_keys(q1), db)
    report(
        "E5: the instance separating CERTAINTY(q1, FK) from CERTAINTY(q1)",
        [("two-row N + one O", with_fk, without_fk)],
        ("instance", "with FK", "without FK"),
    )
    assert with_fk and not without_fk


@pytest.mark.parametrize(
    "entry", example13_problems(), ids=lambda e: e[0]
)
def test_e05_classification_speed(benchmark, entry):
    _, query, fks, _ = entry
    benchmark(lambda: classify(query, fks))


@pytest.mark.parametrize(
    "entry",
    [e for e in example13_problems() if e[3].in_fo],
    ids=lambda e: e[0],
)
def test_e05_rewriting_speed(benchmark, entry):
    _, query, fks, _ = entry
    benchmark(lambda: consistent_rewriting(query, fks))


def test_e05_nl_hard_raises(benchmark):
    _, q2, fks2, _ = example13_problems()[1]

    def attempt():
        try:
            consistent_rewriting(q2, fks2)
        except NotInFOError:
            return True
        return False

    assert benchmark(attempt)
