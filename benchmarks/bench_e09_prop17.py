"""E9 — Proposition 17: the P-complete problem and the dual-Horn loop.

Paper artifact: ``CERTAINTY({N(x,c,y), O(y)}, {N[3]→O})`` is P-complete by
mutual reduction with DUAL HORN SAT (Appendix D.3).  The report round-trips
random dual-Horn formulas through the database encoding and back; timings
sweep chain and branching-chain instances through the unit-propagation
solver.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.hardness import reduce_dual_horn
from repro.solvers import (
    Clause,
    DualHornFormula,
    certain_by_dual_horn,
    instance_to_dual_horn,
    solve_dual_horn,
)
from repro.workloads import ChainParams, branching_chain_instance, chain_instance


def _random_formula(rng, n_vars, n_clauses):
    clauses = []
    for _ in range(n_clauses):
        positives = tuple(
            ("p", i)
            for i in rng.sample(range(n_vars), rng.randint(0, min(3, n_vars)))
        )
        negative = ("p", rng.randrange(n_vars)) if rng.random() < 0.5 else None
        clauses.append(Clause(positives, negative))
    return DualHornFormula(clauses)


def test_e09_report():
    rng = random.Random(909)
    rows = []
    for trial in range(8):
        formula = _random_formula(rng, rng.randint(2, 6), rng.randint(1, 6))
        direct = solve_dual_horn(formula).satisfiable
        db = reduce_dual_horn(formula)
        back = instance_to_dual_horn(db, "c")
        roundtrip = solve_dual_horn(back).satisfiable
        rows.append((trial, len(formula), db.size, direct, roundtrip))
        assert direct == roundtrip
    report("E9: dual-Horn ↔ CERTAINTY round trip", rows,
           ("trial", "clauses", "|db|", "SAT", "SAT via db"))


@pytest.mark.parametrize("n", [64, 512, 4096])
def test_e09_chain_scaling(benchmark, n):
    db = chain_instance(ChainParams(n, "c"))
    assert benchmark(lambda: certain_by_dual_horn(db, "c"))


@pytest.mark.parametrize("width", [2, 8, 32])
def test_e09_branching_width(benchmark, width):
    db = branching_chain_instance(32, width, "c")
    assert benchmark(lambda: certain_by_dual_horn(db, "c"))


def test_e09_encoding_cost(benchmark):
    db = chain_instance(ChainParams(2048, "c"))
    benchmark(lambda: instance_to_dual_horn(db, "c"))
