"""E19 — overload behavior: admission control vs the unbounded queue,
and metrics-driven autoscaling through a burst.

Extension experiment closing ROADMAP open item 3 (production traffic
realism).  Two reports, both driven by the :mod:`repro.load` open-loop
harness — arrivals are scheduled before the first request is sent, so a
server that falls behind cannot slow the offered load down; it can only
queue or shed.

**Admission control (E19a).**  A short closed-loop pass first calibrates
the one-shard server's *sustainable* rate for a CPU-bound FO class
(millisecond decides — the regime where queueing is visible).  The same
open-loop steady schedule at **2x the sustainable rate** then drives two
servers:

* admission **off** (no budgets): the open loop piles work into the
  micro-batch queue without bound — sampled inflight climbs to the
  hundreds, and late arrivals' client-observed p99 grows toward the full
  run length (every request waits behind the whole backlog);
* admission **on** (a small global inflight budget): the server answers
  what it admits quickly — sampled inflight stays at the budget, the
  in-queue p99 stays near ``budget × service time`` — and sheds the
  excess with structured ``overloaded`` envelopes carrying a
  ``retry_after_ms`` hint.

The test **asserts** the trichotomy of graceful degradation: sheds and
retry-after hints appear only with admission on, the admission-on p99
is a small fraction of the admission-off p99, and the sampled queue
stays bounded by the budget while the unbounded server's climbs past
several multiples of it.

**Autoscaling (E19b).**  A process-fleet server starts at one worker
with the autoscaler watching pure queue pressure (shed and latency
signals disabled).  A burst schedule (idle → 2x one worker's sustainable
rate → idle) drives it; the test **asserts** the autoscaler grew the
fleet from the queue-depth signal (an ``up`` decision whose reason names
queue pressure, and the `repro_server_workers` gauge reaching
``max_workers``) and shrank back to ``min_workers`` after the calm
hysteresis window — the observability loop closed end to end.

Both result tables are reproduced in ``docs/deployment.md``; the
machine-readable trajectory lands in ``BENCH_e19_overload.json``.
"""

import threading
import time

from benchmarks.conftest import report
from benchmarks.result_io import record_result
from repro.api import Problem
from repro.load import LoadProfile, LoadRequest, run_loadgen
from repro.serve import (
    AutoscaleConfig,
    BackgroundServer,
    ServeClient,
    ServerConfig,
)
from repro.workloads.random_instances import (
    RandomInstanceParams,
    random_instances_for_query,
)

DURATION = 3.0  # offered-load window per series, seconds
BUDGET = 8  # admission-on global inflight budget
N_INSTANCES = 6


def _cpu_bound_items() -> list[tuple[Problem, object]]:
    """One FO chain class over instances big enough that a decide costs
    milliseconds of pure Python — small enough that a few hundred queued
    requests still drain within the harness's drain window."""
    problem = Problem.of(
        "R(x | y)", "S(y | 'e19')", fks=["R[2]->S"], name="e19"
    )
    params = RandomInstanceParams(
        blocks_per_relation=220, max_block_size=3, domain_size=440
    )
    dbs = list(
        random_instances_for_query(
            problem.query, problem.fks, N_INSTANCES, seed=19, params=params
        )
    )
    return [(problem, db) for db in dbs]


class _FixedWorkload:
    """A load-harness workload over one fixed CPU-bound class."""

    def __init__(self, items):
        self._items = items

    def plan(self, n: int) -> list[LoadRequest]:
        return [
            LoadRequest(
                tenant=0, label="e19", tier="fo", size=0,
                problem=self._items[i % len(self._items)][0],
                db=self._items[i % len(self._items)][1],
            )
            for i in range(n)
        ]


class _GaugeSampler(threading.Thread):
    """Poll a server's inflight/queue/worker gauges while load runs."""

    def __init__(self, host: str, port: int, period: float = 0.05):
        super().__init__(daemon=True)
        self._host = host
        self._port = port
        self._period = period
        self._halt = threading.Event()
        self.max_inflight = 0
        self.max_queue_depth = 0
        self.max_workers = 0

    def run(self) -> None:
        with ServeClient(self._host, self._port, timeout=30.0) as client:
            while not self._halt.is_set():
                server = client.stats()["server"]
                self.max_inflight = max(
                    self.max_inflight, int(server.get("inflight", 0))
                )
                self.max_queue_depth = max(
                    self.max_queue_depth, int(server.get("queue_depth", 0))
                )
                autoscale = server.get("autoscale") or {}
                self.max_workers = max(
                    self.max_workers, int(autoscale.get("workers", 0))
                )
                self._halt.wait(self._period)

    def stop(self) -> "_GaugeSampler":
        self._halt.set()
        self.join(timeout=10)
        return self


def _calibrate(host: str, port: int, items) -> float:
    """The closed-loop sustainable rate: warm the plan, then time
    sequential decides (send, wait, send — the server never queues)."""
    with ServeClient(host, port, timeout=60.0) as client:
        for problem, db in items:  # warm plan cache + solver
            client.decide(problem, db)
        n = 40
        start = time.perf_counter()
        for i in range(n):
            problem, db = items[i % len(items)]
            client.decide(problem, db)
        elapsed = time.perf_counter() - start
    return n / elapsed


def _offered_profile(rate: float) -> LoadProfile:
    return LoadProfile(
        duration_seconds=DURATION,
        rate_rps=rate,
        schedule="steady",
        connections=4,
        seed=19,
    )


def _drive(config: ServerConfig, rate: float, items, drain: float):
    with BackgroundServer(config) as background:
        host, port = background.address
        sustainable = _calibrate(host, port, items)
        sampler = _GaugeSampler(host, port)
        sampler.start()
        try:
            load_report = run_loadgen(
                host, port, _offered_profile(rate),
                workload=_FixedWorkload(items),
                drain_seconds=drain,
            )
        finally:
            sampler.stop()
    return load_report, sampler, sustainable


def _overall_p99_ms(load_report) -> float:
    values = [
        snapshot.p99_seconds
        for snapshot in load_report.tier_metrics.values()
        if snapshot.p99_seconds is not None
    ]
    return max(values) * 1e3 if values else 0.0


def test_e19a_admission_bounds_queue_and_sheds_excess():
    items = _cpu_bound_items()

    # calibrate once on a throwaway unbudgeted server, then offer 2x
    with BackgroundServer(ServerConfig(shards=1)) as background:
        sustainable = _calibrate(*background.address, items)
    offered = 2.0 * sustainable

    off_report, off_gauges, _ = _drive(
        ServerConfig(shards=1), offered, items, drain=60.0
    )
    on_report, on_gauges, _ = _drive(
        ServerConfig(shards=1, max_inflight=BUDGET, retry_after_ms=20),
        offered, items, drain=60.0,
    )

    rows = []
    for label, run, gauges in (
        ("admission off", off_report, off_gauges),
        (f"admission on (budget {BUDGET})", on_report, on_gauges),
    ):
        rows.append(
            (
                label,
                f"{run.offered} @ {run.offered_rps:.0f}/s",
                f"{run.ok}",
                f"{run.overloaded}",
                f"{gauges.max_inflight}",
                f"{_overall_p99_ms(run):,.0f} ms",
                f"{run.retry_after_ms_max} ms",
            )
        )
        record_result(
            "e19_overload", label.split(" (")[0].replace(" ", "-"),
            metrics={
                "offered": run.offered,
                "ok": run.ok,
                "overloaded": run.overloaded,
                "incomplete": run.incomplete,
                "p99_ms": _overall_p99_ms(run),
                "max_inflight_sampled": gauges.max_inflight,
                "retry_after_ms_max": run.retry_after_ms_max,
            },
            config={
                "budget": BUDGET if "on" in label else 0,
                "offered_rps": offered,
                "sustainable_rps": sustainable,
                "duration_seconds": DURATION,
            },
        )
    report(
        f"E19a: open-loop steady load at 2x sustainable "
        f"({offered:.0f}/s offered, ~{sustainable:.0f}/s sustainable, "
        "1 shard)",
        rows,
        (
            "series", "offered", "ok", "shed", "max inflight",
            "client p99", "max retry-after",
        ),
    )

    # no silent failure modes in either run
    assert off_report.errors == 0 and on_report.errors == 0
    assert off_report.incomplete == 0 and on_report.incomplete == 0

    # without budgets nothing is shed: the queue absorbs all of it ...
    assert off_report.overloaded == 0
    assert off_gauges.max_inflight >= 4 * BUDGET, (
        f"the unbudgeted server's inflight peaked at "
        f"{off_gauges.max_inflight} — 2x sustainable load should have "
        f"queued far past {4 * BUDGET}"
    )
    # ... with the budget the excess is shed with retry-after hints and
    # the in-server queue never exceeds the admitted budget
    assert on_report.overloaded > 0
    assert on_report.retry_after_ms_max >= 1
    assert on_gauges.max_inflight <= BUDGET
    # graceful degradation: bounded queue → bounded client-observed p99
    off_p99, on_p99 = _overall_p99_ms(off_report), _overall_p99_ms(on_report)
    assert on_p99 < 0.5 * off_p99, (
        f"admission-on p99 ({on_p99:.0f} ms) should be a small fraction "
        f"of the unbounded queue's ({off_p99:.0f} ms)"
    )


def test_e19b_autoscaler_grows_on_queue_pressure_and_shrinks_after():
    items = _cpu_bound_items()
    autoscale = AutoscaleConfig(
        min_workers=1,
        max_workers=2,
        interval_seconds=0.25,
        queue_high=4.0,
        queue_low=0.5,
        shed_high=0,  # queue-depth signal only (the acceptance criterion)
        scale_down_consecutive=3,
        cooldown_seconds=0.5,
    )
    config = ServerConfig(
        shards=1, processes=1, autoscale=autoscale, linger_ms=1
    )
    with BackgroundServer(config) as background:
        host, port = background.address
        sustainable = _calibrate(host, port, items)
        sampler = _GaugeSampler(host, port, period=0.1)
        sampler.start()
        # idle lead-in, then a burst at 2x one worker's sustainable rate
        profile = LoadProfile(
            duration_seconds=4.0,
            rate_rps=0.5 * sustainable,
            schedule="burst",
            burst_factor=4.0,  # burst window runs at 2x sustainable
            burst_start=0.25,
            burst_end=1.0,
            connections=4,
            seed=19,
        )
        load_report = run_loadgen(
            host, port, profile,
            workload=_FixedWorkload(items), drain_seconds=60.0,
        )
        # after the burst: wait out drain + calm hysteresis + cooldown
        deadline = time.monotonic() + 30.0
        final_status = None
        with ServeClient(host, port, timeout=30.0) as client:
            while time.monotonic() < deadline:
                final_status = client.stats()["server"]["autoscale"]
                if (
                    final_status["workers"] == autoscale.min_workers
                    and final_status["resizes"] >= 2
                ):
                    break
                time.sleep(0.25)
        sampler.stop()

    assert final_status is not None
    decisions = final_status["decisions"]
    ups = [d for d in decisions if d["action"] == "up"]
    downs = [d for d in decisions if d["action"] == "down"]
    rows = [
        (
            d["action"], str(d["workers"]),
            f"{d['pressure']:g}", str(d["shed_delta"]), d["reason"],
        )
        for d in decisions
    ]
    report(
        f"E19b: autoscale decisions through a burst at 2x one worker's "
        f"sustainable rate (~{sustainable:.0f}/s, bounds "
        f"[{autoscale.min_workers}, {autoscale.max_workers}])",
        rows,
        ("action", "workers", "pressure", "shed Δ", "reason"),
    )
    record_result(
        "e19_overload", "autoscale-burst",
        metrics={
            "offered": load_report.offered,
            "ok": load_report.ok,
            "errors": load_report.errors,
            "max_workers_sampled": sampler.max_workers,
            "final_workers": final_status["workers"],
            "resizes": final_status["resizes"],
        },
        config={
            "min_workers": autoscale.min_workers,
            "max_workers": autoscale.max_workers,
            "interval_seconds": autoscale.interval_seconds,
            "sustainable_rps": sustainable,
        },
    )

    assert load_report.errors == 0 and load_report.incomplete == 0
    # grew: an `up` decision fired, driven by the queue-pressure signal,
    # and the worker gauge really reached the upper bound
    assert ups, f"no scale-up decision in {decisions}"
    assert any("queue pressure" in d["reason"] for d in ups)
    assert sampler.max_workers == autoscale.max_workers
    # ...and shrank back once calm: the loop closes in both directions
    assert downs, f"no scale-down decision in {decisions}"
    assert final_status["workers"] == autoscale.min_workers
