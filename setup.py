"""Setuptools shim so that `python setup.py develop` works in offline
environments lacking the `wheel` package (PEP 660 editable installs need it).
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
